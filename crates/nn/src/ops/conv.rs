//! Differentiable 2-D convolution and transposed convolution.
//!
//! Semantics follow PyTorch exactly:
//!
//! - `conv2d`: cross-correlation, weight `[O, C, kh, kw]`, output size
//!   `(s + 2p − k)/stride + 1`.
//! - `conv_transpose2d`: the adjoint map, weight `[C_in, C_out, kh, kw]`,
//!   output size `(s − 1)·stride + k − 2p`.
//!
//! Both are lowered to GEMM via im2col/col2im; backward passes recompute the
//! lowering instead of caching it, trading a little compute for a much
//! smaller tape.
//!
//! The forward passes are multi-threaded through `litho-parallel`: batched
//! inputs fan out one sample per work item, and single-sample inputs fan the
//! im2col/GEMM (and for the transposed conv, the col2im scatter) out across
//! channels. Every split is over disjoint output regions with unchanged
//! per-element arithmetic order, so results are **bit-identical to the
//! serial path for any thread count**. The backward passes stay serial: the
//! weight gradient accumulates across samples, and parallelizing it would
//! reorder floating-point sums.

use crate::graph::{Graph, Var};
use crate::infer::InferCtx;
use litho_parallel::Pool;
use litho_tensor::{
    col2im, conv_out_size, conv_transpose_out_size, im2col, sgemm_nn, sgemm_nn_with_scratch,
    sgemm_nt, sgemm_tn, sgemm_tn_rowblock, sgemm_tn_with_scratch, GemmBlocking, Tensor,
};

/// Minimum multiply-accumulates a worker thread must receive before a
/// forward pass fans out; below this, spawn cost dominates.
const PAR_MIN_MACS: usize = 64 * 1024;

/// Output shape `[N, O, OH, OW]` of a conv2d, with full shape validation.
fn conv2d_out_shape(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> [usize; 4] {
    assert_eq!(x.rank(), 4, "conv2d expects NCHW input");
    assert_eq!(w.rank(), 4, "conv2d expects OCKK weight");
    assert_eq!(
        x.dim(1),
        w.dim(1),
        "channel mismatch between input and weight"
    );
    [
        x.dim(0),
        w.dim(0),
        conv_out_size(x.dim(2), w.dim(2), stride, pad),
        conv_out_size(x.dim(3), w.dim(3), stride, pad),
    ]
}

/// The multi-threaded inference kernel behind [`conv2d`]: cross-correlation
/// of `x: [N,C,H,W]` with `w: [O,C,kh,kw]` and optional `bias: [O]`, on an
/// explicit `pool`.
///
/// Batched inputs parallelize one sample per work item; single-sample inputs
/// parallelize the im2col lowering across input channels and the GEMM across
/// output channels. The result is bit-identical to the serial loop for any
/// pool size (a pool of 1 never spawns).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_forward_with_pool(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    pool: &Pool,
) -> Tensor {
    let mut out = Tensor::zeros(&conv2d_out_shape(x, w, stride, pad));
    conv2d_fill(x, w, bias, stride, pad, pool, &mut out);
    out
}

/// [`conv2d_forward_with_pool`] drawing its output from an [`InferCtx`]
/// buffer pool — the tape-free path behind `Conv2d::infer`. Bit-identical to
/// the graph forward (same fill kernel).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_infer(
    ctx: &mut InferCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let shape = conv2d_out_shape(x, w, stride, pad);
    let mut out = ctx.alloc_zeroed(&shape);
    let pool = ctx.pool().clone();
    if x.dim(0) == 1 && out.numel() > 0 {
        // single sample: draw the im2col buffer AND the GEMM packing scratch
        // from the ctx bucket pool, so a warm forward allocates nothing
        let (o, l) = (shape[1], shape[2] * shape[3]);
        let k = x.dim(1) * w.dim(2) * w.dim(3);
        let blk = GemmBlocking::for_shape(o, l, k);
        let mut cols = ctx.alloc(&[k * l]);
        let mut pack = ctx.alloc(&[blk.pack_len()]);
        let bd = bias.map(|bv| {
            assert_eq!(bv.numel(), o, "bias length must equal output channels");
            bv.as_slice()
        });
        conv2d_single(
            x,
            w,
            bd,
            stride,
            pad,
            &pool,
            out.as_mut_slice(),
            cols.as_mut_slice(),
            pack.as_mut_slice(),
        );
        ctx.recycle(cols);
        ctx.recycle(pack);
    } else {
        conv2d_fill(x, w, bias, stride, pad, &pool, &mut out);
    }
    out
}

/// Shared fill kernel: accumulates the convolution into a **zeroed** `out`
/// of the exact output shape. Both the graph forward and the tape-free path
/// route through this, which is what keeps them bit-identical.
fn conv2d_fill(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    pool: &Pool,
    out: &mut Tensor,
) {
    let (n, c, h, width) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (o, kh, kw) = (w.dim(0), w.dim(2), w.dim(3));
    debug_assert_eq!(out.shape(), &conv2d_out_shape(x, w, stride, pad));
    let (oh, ow) = (out.dim(2), out.dim(3));
    let k = c * kh * kw;
    let l = oh * ow;
    let bd = bias.map(|bv| {
        assert_eq!(bv.numel(), o, "bias length must equal output channels");
        bv.as_slice()
    });

    if out.numel() == 0 {
        return; // empty batch or zero output channels: pre-pool no-op
    }
    let od = out.as_mut_slice();
    let xd = x.as_slice();
    let wd = w.as_slice();
    if n > 1 {
        // one work item per sample; each worker allocates one cols buffer
        // for its whole run of samples (im2col fully overwrites it)
        let sample_grain = PAR_MIN_MACS.div_ceil((o * l * k).max(1));
        pool.par_chunk_runs_mut(od, o * l, sample_grain, |first, run| {
            // litho-lint: allow(infer-alloc): training-path worker scratch; conv2d_infer recycles via InferCtx
            let mut cols = vec![0.0f32; k * l];
            for (off, od_n) in run.chunks_mut(o * l).enumerate() {
                let ni = first + off;
                im2col(
                    &xd[ni * c * h * width..(ni + 1) * c * h * width],
                    c,
                    h,
                    width,
                    kh,
                    kw,
                    stride,
                    pad,
                    &mut cols,
                );
                sgemm_nn(o, l, k, 1.0, wd, &cols, od_n);
                if let Some(bd) = bd {
                    for (oi, orow) in od_n.chunks_mut(l).enumerate() {
                        let bias = bd[oi];
                        for v in orow {
                            *v += bias;
                        }
                    }
                }
            }
        });
    } else {
        // single sample: scratch allocated per call (the training path; the
        // tape-free path in `conv2d_infer` recycles pool buffers instead)
        let blk = GemmBlocking::for_shape(o, l, k);
        // litho-lint: allow(infer-alloc): training-path scratch; conv2d_infer recycles via InferCtx
        let mut cols = vec![0.0f32; k * l];
        // litho-lint: allow(infer-alloc): training-path scratch; conv2d_infer recycles via InferCtx
        let mut pack = vec![0.0f32; blk.pack_len()];
        conv2d_single(x, w, bd, stride, pad, pool, od, &mut cols, &mut pack);
    }
}

/// Single-sample conv2d core shared by [`conv2d_fill`] and the scratch-backed
/// [`conv2d_infer`] path: im2col into `cols` (`k·l` floats, fully
/// overwritten), then the weight GEMM plus bias into the **zeroed** `od`
/// (`o·l` floats).
///
/// The im2col lowering fans out across input channels. The GEMM either runs
/// as one blocked call drawing packing scratch from `pack` (whenever the
/// pool would not fan out — the common inference case) or fans out across
/// disjoint output-channel row blocks through the plain driver; both compose
/// bit-identically, so results match the serial loop for any pool size.
#[allow(clippy::too_many_arguments)]
fn conv2d_single(
    x: &Tensor,
    w: &Tensor,
    bd: Option<&[f32]>,
    stride: usize,
    pad: usize,
    pool: &Pool,
    od: &mut [f32],
    cols: &mut [f32],
    pack: &mut [f32],
) {
    let (c, h, width) = (x.dim(1), x.dim(2), x.dim(3));
    let (o, kh, kw) = (w.dim(0), w.dim(2), w.dim(3));
    let k = c * kh * kw;
    let l = od.len() / o;
    let xd = x.as_slice();
    let wd = w.as_slice();
    let chan_grain = PAR_MIN_MACS.div_ceil((kh * kw * l).max(1));
    pool.par_chunks_mut(cols, kh * kw * l, chan_grain, |ci, rows| {
        im2col(
            &xd[ci * h * width..(ci + 1) * h * width],
            1,
            h,
            width,
            kh,
            kw,
            stride,
            pad,
            rows,
        );
    });
    let row_grain = PAR_MIN_MACS.div_ceil((l * k).max(1));
    if pool.runs_inline(o, row_grain) {
        let blk = GemmBlocking::for_shape(o, l, k);
        sgemm_nn_with_scratch(&blk, o, l, k, 1.0, wd, cols, od, pack);
    } else {
        pool.par_chunk_runs_mut(od, l, row_grain, |first, run| {
            let rows = run.len() / l;
            sgemm_nn(
                rows,
                l,
                k,
                1.0,
                &wd[first * k..(first + rows) * k],
                cols,
                run,
            );
        });
    }
    if let Some(bd) = bd {
        for (orow, &bias) in od.chunks_mut(l).zip(bd) {
            for v in orow {
                *v += bias;
            }
        }
    }
}

/// 2-D convolution. `x: [N,C,H,W]`, `w: [O,C,kh,kw]`, optional `b: [O]`.
///
/// The forward pass runs on the process-wide [`litho_parallel::global`]
/// pool; see [`conv2d_forward_with_pool`].
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d(g: &mut Graph, x: Var, w: Var, b: Option<Var>, stride: usize, pad: usize) -> Var {
    let xv = g.value(x);
    let wv = g.value(w);
    assert_eq!(xv.rank(), 4, "conv2d expects NCHW input");
    assert_eq!(wv.rank(), 4, "conv2d expects OCKK weight");
    let (n, c, h, width) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
    let (o, kh, kw) = (wv.dim(0), wv.dim(2), wv.dim(3));
    let oh = conv_out_size(h, kh, stride, pad);
    let ow = conv_out_size(width, kw, stride, pad);
    let k = c * kh * kw;
    let l = oh * ow;
    let out = conv2d_forward_with_pool(
        xv,
        wv,
        b.map(|bvar| g.value(bvar)),
        stride,
        pad,
        litho_parallel::global(),
    );

    let parents: Vec<Var> = match b {
        Some(bvar) => vec![x, w, bvar],
        None => vec![x, w],
    };
    let has_bias = b.is_some();
    g.push(
        out,
        &parents,
        Box::new(move |grad, parents, _| {
            let xv = parents[0];
            let wv = parents[1];
            let gd = grad.as_slice();
            let xd = xv.as_slice();
            let wd = wv.as_slice();
            let mut dx = Tensor::zeros(xv.shape());
            let mut dw = Tensor::zeros(wv.shape());
            let mut cols = vec![0.0f32; k * l];
            let mut dcols = vec![0.0f32; k * l];
            {
                let dxd = dx.as_mut_slice();
                let dwd = dw.as_mut_slice();
                for ni in 0..n {
                    let gy = &gd[ni * o * l..(ni + 1) * o * l];
                    im2col(
                        &xd[ni * c * h * width..(ni + 1) * c * h * width],
                        c,
                        h,
                        width,
                        kh,
                        kw,
                        stride,
                        pad,
                        &mut cols,
                    );
                    // dW += dY · colsᵀ
                    sgemm_nt(o, k, l, 1.0, gy, &cols, dwd);
                    // dcols = Wᵀ · dY
                    dcols.fill(0.0);
                    sgemm_tn(o, l, k, 1.0, wd, gy, &mut dcols);
                    col2im(
                        &dcols,
                        c,
                        h,
                        width,
                        kh,
                        kw,
                        stride,
                        pad,
                        &mut dxd[ni * c * h * width..(ni + 1) * c * h * width],
                    );
                }
            }
            let mut grads = vec![dx, dw];
            if has_bias {
                let mut db = Tensor::zeros(&[o]);
                let dbd = db.as_mut_slice();
                for ni in 0..n {
                    for oi in 0..o {
                        let base = (ni * o + oi) * l;
                        dbd[oi] += gd[base..base + l].iter().sum::<f32>();
                    }
                }
                grads.push(db);
            }
            grads
        }),
    )
}

/// The multi-threaded inference kernel behind [`conv_transpose2d`]:
/// the adjoint convolution of `x: [N,C_in,H,W]` with `w: [C_in,C_out,kh,kw]`
/// and optional `bias: [C_out]`, on an explicit `pool`.
///
/// Batched inputs parallelize one sample per work item; single-sample inputs
/// parallelize the `Wᵀ·x` GEMM across its output rows and the col2im
/// scatter across output channels. Bit-identical to the serial loop for any
/// pool size.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv_transpose2d_forward_with_pool(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    pool: &Pool,
) -> Tensor {
    let mut out = Tensor::zeros(&conv_transpose2d_out_shape(x, w, stride, pad));
    conv_transpose2d_fill(x, w, bias, stride, pad, pool, &mut out);
    out
}

/// [`conv_transpose2d_forward_with_pool`] drawing its output from an
/// [`InferCtx`] buffer pool — the tape-free path behind
/// `ConvTranspose2d::infer`. Bit-identical to the graph forward (same fill
/// kernel).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv_transpose2d_infer(
    ctx: &mut InferCtx,
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    let shape = conv_transpose2d_out_shape(x, w, stride, pad);
    let mut out = ctx.alloc_zeroed(&shape);
    let pool = ctx.pool().clone();
    if x.dim(0) == 1 && out.numel() > 0 {
        // single sample: the Wᵀ·x lowering buffer and the GEMM packing
        // scratch both come from the ctx bucket pool (zero-alloc when warm)
        let (ci, co) = (x.dim(1), w.dim(1));
        let kout = co * w.dim(2) * w.dim(3);
        let lin = x.dim(2) * x.dim(3);
        let blk = GemmBlocking::for_shape(kout, lin, ci);
        let mut cols = ctx.alloc(&[kout * lin]);
        cols.as_mut_slice().fill(0.0); // sgemm_tn accumulates
        let mut pack = ctx.alloc(&[blk.pack_len()]);
        let bd = bias.map(|bv| {
            assert_eq!(bv.numel(), co, "bias length must equal output channels");
            bv.as_slice()
        });
        conv_transpose2d_single(
            x,
            w,
            bd,
            stride,
            pad,
            &pool,
            out.as_mut_slice(),
            cols.as_mut_slice(),
            pack.as_mut_slice(),
        );
        ctx.recycle(cols);
        ctx.recycle(pack);
    } else {
        conv_transpose2d_fill(x, w, bias, stride, pad, &pool, &mut out);
    }
    out
}

/// Output shape `[N, C_out, OH, OW]` of a conv_transpose2d, with full shape
/// validation.
fn conv_transpose2d_out_shape(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> [usize; 4] {
    assert_eq!(x.rank(), 4, "conv_transpose2d expects NCHW input");
    assert_eq!(w.rank(), 4, "conv_transpose2d expects IOKK weight");
    assert_eq!(
        x.dim(1),
        w.dim(0),
        "channel mismatch between input and weight"
    );
    let oh = conv_transpose_out_size(x.dim(2), w.dim(2), stride, pad);
    let ow = conv_transpose_out_size(x.dim(3), w.dim(3), stride, pad);
    // sanity: the adjoint conv maps the output size back to the input size
    debug_assert_eq!(conv_out_size(oh, w.dim(2), stride, pad), x.dim(2));
    debug_assert_eq!(conv_out_size(ow, w.dim(3), stride, pad), x.dim(3));
    [x.dim(0), w.dim(1), oh, ow]
}

/// Shared fill kernel for the transposed conv: accumulates into a **zeroed**
/// `out` of the exact output shape; both forward entry points route here.
fn conv_transpose2d_fill(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    pool: &Pool,
    out: &mut Tensor,
) {
    let (n, ci, h, width) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (co, kh, kw) = (w.dim(1), w.dim(2), w.dim(3));
    debug_assert_eq!(out.shape(), &conv_transpose2d_out_shape(x, w, stride, pad));
    let (oh, ow) = (out.dim(2), out.dim(3));
    let kout = co * kh * kw;
    let lin = h * width;
    let bd = bias.map(|bv| {
        assert_eq!(bv.numel(), co, "bias length must equal output channels");
        bv.as_slice()
    });

    if out.numel() == 0 {
        // empty batch, zero output channels or zero spatial output (e.g.
        // 1x1 input with k == 2*pad): the pre-pool loop was a no-op
        return;
    }
    let od = out.as_mut_slice();
    let xd = x.as_slice();
    let wd = w.as_slice();
    let hw = oh * ow;
    if n > 1 {
        // one cols buffer per worker run; sgemm_tn accumulates, so it is
        // re-zeroed per sample (exactly like the old serial loop)
        let sample_grain = PAR_MIN_MACS.div_ceil((ci * lin * kout).max(1));
        pool.par_chunk_runs_mut(od, co * hw, sample_grain, |first, run| {
            // litho-lint: allow(infer-alloc): training-path worker scratch; conv_transpose2d_infer recycles via InferCtx
            let mut cols = vec![0.0f32; kout * lin];
            for (off, od_n) in run.chunks_mut(co * hw).enumerate() {
                let ni = first + off;
                // cols = Wᵀ · x_n   ([kout, lin])
                cols.fill(0.0);
                sgemm_tn(
                    ci,
                    lin,
                    kout,
                    1.0,
                    wd,
                    &xd[ni * ci * lin..(ni + 1) * ci * lin],
                    &mut cols,
                );
                col2im(&cols, co, oh, ow, kh, kw, stride, pad, od_n);
                if let Some(bd) = bd {
                    for (oi, ochan) in od_n.chunks_mut(hw).enumerate() {
                        let bias = bd[oi];
                        for v in ochan {
                            *v += bias;
                        }
                    }
                }
            }
        });
    } else {
        // single sample: scratch allocated per call (the training path; the
        // tape-free path in `conv_transpose2d_infer` recycles pool buffers)
        let blk = GemmBlocking::for_shape(kout, lin, ci);
        // litho-lint: allow(infer-alloc): training-path scratch; conv_transpose2d_infer recycles via InferCtx
        let mut cols = vec![0.0f32; kout * lin];
        // litho-lint: allow(infer-alloc): training-path scratch; conv_transpose2d_infer recycles via InferCtx
        let mut pack = vec![0.0f32; blk.pack_len()];
        conv_transpose2d_single(x, w, bd, stride, pad, pool, od, &mut cols, &mut pack);
    }
}

/// Single-sample transposed-conv core shared by [`conv_transpose2d_fill`]
/// and the scratch-backed [`conv_transpose2d_infer`] path: `cols = Wᵀ·x`
/// into the **zeroed** `cols` (`kout·lin` floats), then the col2im scatter
/// plus bias into the **zeroed** `od`.
///
/// The GEMM either runs as one blocked call drawing packing scratch from
/// `pack` (whenever the pool would not fan out) or row-splits through
/// [`sgemm_tn_rowblock`] (one multi-row block per worker run — blocks
/// compose bit-identically); the scatter fans out across output channels.
#[allow(clippy::too_many_arguments)]
fn conv_transpose2d_single(
    x: &Tensor,
    w: &Tensor,
    bd: Option<&[f32]>,
    stride: usize,
    pad: usize,
    pool: &Pool,
    od: &mut [f32],
    cols: &mut [f32],
    pack: &mut [f32],
) {
    let (ci, h, width) = (x.dim(1), x.dim(2), x.dim(3));
    let (co, kh, kw) = (w.dim(1), w.dim(2), w.dim(3));
    let kout = co * kh * kw;
    let lin = h * width;
    let (oh, ow) = (
        conv_transpose_out_size(h, kh, stride, pad),
        conv_transpose_out_size(width, kw, stride, pad),
    );
    let hw = oh * ow;
    let xd = x.as_slice();
    let wd = w.as_slice();
    let row_grain = PAR_MIN_MACS.div_ceil((ci * lin).max(1));
    if pool.runs_inline(kout, row_grain) {
        let blk = GemmBlocking::for_shape(kout, lin, ci);
        sgemm_tn_with_scratch(&blk, ci, lin, kout, 1.0, wd, xd, cols, pack);
    } else {
        pool.par_chunk_runs_mut(cols, lin, row_grain, |p0, run| {
            sgemm_tn_rowblock(ci, lin, kout, 1.0, wd, xd, run, p0);
        });
    }
    let chan_grain = PAR_MIN_MACS.div_ceil((kh * kw * lin).max(1));
    pool.par_chunks_mut(od, hw, chan_grain, |oi, ochan| {
        col2im(
            &cols[oi * kh * kw * lin..(oi + 1) * kh * kw * lin],
            1,
            oh,
            ow,
            kh,
            kw,
            stride,
            pad,
            ochan,
        );
        if let Some(bd) = bd {
            let bias = bd[oi];
            for v in ochan {
                *v += bias;
            }
        }
    });
}

/// 2-D transposed convolution. `x: [N,C_in,H,W]`, `w: [C_in,C_out,kh,kw]`,
/// optional `b: [C_out]`.
///
/// The forward pass runs on the process-wide [`litho_parallel::global`]
/// pool; see [`conv_transpose2d_forward_with_pool`].
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv_transpose2d(
    g: &mut Graph,
    x: Var,
    w: Var,
    b: Option<Var>,
    stride: usize,
    pad: usize,
) -> Var {
    let xv = g.value(x);
    let wv = g.value(w);
    assert_eq!(xv.rank(), 4, "conv_transpose2d expects NCHW input");
    assert_eq!(wv.rank(), 4, "conv_transpose2d expects IOKK weight");
    let (n, ci, h, width) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
    let (co, kh, kw) = (wv.dim(1), wv.dim(2), wv.dim(3));
    let oh = conv_transpose_out_size(h, kh, stride, pad);
    let ow = conv_transpose_out_size(width, kw, stride, pad);
    let kout = co * kh * kw;
    let lin = h * width;
    let out = conv_transpose2d_forward_with_pool(
        xv,
        wv,
        b.map(|bvar| g.value(bvar)),
        stride,
        pad,
        litho_parallel::global(),
    );

    let parents: Vec<Var> = match b {
        Some(bvar) => vec![x, w, bvar],
        None => vec![x, w],
    };
    let has_bias = b.is_some();
    g.push(
        out,
        &parents,
        Box::new(move |grad, parents, _| {
            let xv = parents[0];
            let wv = parents[1];
            let gd = grad.as_slice();
            let xd = xv.as_slice();
            let wd = wv.as_slice();
            let mut dx = Tensor::zeros(xv.shape());
            let mut dw = Tensor::zeros(wv.shape());
            let mut dcols = vec![0.0f32; kout * lin];
            {
                let dxd = dx.as_mut_slice();
                let dwd = dw.as_mut_slice();
                for ni in 0..n {
                    let gy = &gd[ni * co * oh * ow..(ni + 1) * co * oh * ow];
                    // dcols = im2col(dY)
                    im2col(gy, co, oh, ow, kh, kw, stride, pad, &mut dcols);
                    // dX = W · dcols
                    sgemm_nn(
                        ci,
                        lin,
                        kout,
                        1.0,
                        wd,
                        &dcols,
                        &mut dxd[ni * ci * lin..(ni + 1) * ci * lin],
                    );
                    // dW += x_n · dcolsᵀ
                    sgemm_nt(
                        ci,
                        kout,
                        lin,
                        1.0,
                        &xd[ni * ci * lin..(ni + 1) * ci * lin],
                        &dcols,
                        dwd,
                    );
                }
            }
            let mut grads = vec![dx, dw];
            if has_bias {
                let hw = oh * ow;
                let mut db = Tensor::zeros(&[co]);
                let dbd = db.as_mut_slice();
                for ni in 0..n {
                    for oi in 0..co {
                        let base = (ni * co + oi) * hw;
                        dbd[oi] += gd[base..base + hw].iter().sum::<f32>();
                    }
                }
                grads.push(db);
            }
            grads
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Param;
    use crate::ops::mse_loss;

    fn ramp(shape: &[usize], s: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) * s).collect(),
            shape,
        )
    }

    #[test]
    fn conv2d_known_values() {
        // 1x1x3x3 input, 3x3 averaging kernel, pad 1
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 3, 3]));
        let w = g.input(Tensor::full(&[1, 1, 3, 3], 1.0 / 9.0));
        let y = conv2d(&mut g, x, w, None, 1, 1);
        let out = g.value(y);
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        assert!((out.get(&[0, 0, 1, 1]) - 1.0).abs() < 1e-6); // centre full overlap
        assert!((out.get(&[0, 0, 0, 0]) - 4.0 / 9.0).abs() < 1e-6); // corner
    }

    #[test]
    fn conv2d_identity_kernel_with_stride() {
        let input = ramp(&[1, 1, 4, 4], 0.5);
        let mut g = Graph::new();
        let x = g.input(input.clone());
        // 1x1 kernel = identity, stride 2 samples even pixels
        let w = g.input(Tensor::ones(&[1, 1, 1, 1]));
        let y = conv2d(&mut g, x, w, None, 2, 0);
        let out = g.value(y);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.get(&[0, 0, 0, 0]), input.get(&[0, 0, 0, 0]));
        assert_eq!(out.get(&[0, 0, 1, 1]), input.get(&[0, 0, 2, 2]));
    }

    #[test]
    fn conv2d_multichannel_sums_channels() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 3, 2, 2]));
        let w = g.input(Tensor::ones(&[2, 3, 1, 1]));
        let b = g.input(Tensor::from_vec(vec![0.5, -0.5], &[2]));
        let y = conv2d(&mut g, x, w, Some(b), 1, 0);
        let out = g.value(y);
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        assert!((out.get(&[0, 0, 0, 0]) - 3.5).abs() < 1e-6);
        assert!((out.get(&[0, 1, 0, 0]) - 2.5).abs() < 1e-6);
    }

    /// Generic finite-difference check for a parameter used inside a conv op.
    fn grad_check(loss_of: impl Fn(&Tensor) -> f32, init: &Tensor, analytic: &Tensor, tol: f32) {
        let eps = 1e-2f32;
        for i in 0..init.numel() {
            let mut plus = init.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = init.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            let ana = analytic.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs()),
                "elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn conv2d_weight_and_input_gradients() {
        let x0 = ramp(&[2, 2, 5, 5], 0.21);
        let w0 = ramp(&[3, 2, 3, 3], 0.11);
        let b0 = ramp(&[3], 0.3);

        // analytic grads
        let px = Param::new(x0.clone(), "x");
        let pw = Param::new(w0.clone(), "w");
        let pb = Param::new(b0.clone(), "b");
        let mut g = Graph::new();
        let x = g.param(&px);
        let w = g.param(&pw);
        let b = g.param(&pb);
        let y = conv2d(&mut g, x, w, Some(b), 2, 1);
        let target = Tensor::zeros(g.value(y).shape());
        let loss = mse_loss(&mut g, y, &target);
        g.backward(loss);

        let loss_with = |xt: &Tensor, wt: &Tensor, bt: &Tensor| {
            let mut g2 = Graph::new();
            let x2 = g2.input(xt.clone());
            let w2 = g2.input(wt.clone());
            let b2 = g2.input(bt.clone());
            let y2 = conv2d(&mut g2, x2, w2, Some(b2), 2, 1);
            let t2 = Tensor::zeros(g2.value(y2).shape());
            let l2 = mse_loss(&mut g2, y2, &t2);
            g2.value(l2).as_slice()[0]
        };
        grad_check(|t| loss_with(t, &w0, &b0), &x0, &px.grad(), 3e-2);
        grad_check(|t| loss_with(&x0, t, &b0), &w0, &pw.grad(), 3e-2);
        grad_check(|t| loss_with(&x0, &w0, t), &b0, &pb.grad(), 3e-2);
    }

    #[test]
    fn forward_kernels_bit_identical_across_pool_sizes() {
        // both batched (n=3) and single-sample shapes, sized past the
        // fan-out threshold so threads actually engage
        let x1 = ramp(&[1, 3, 48, 40], 0.13);
        let xn = ramp(&[3, 3, 24, 24], 0.17);
        let w = ramp(&[5, 3, 3, 3], 0.11);
        let bias = ramp(&[5], 0.4);
        let wt = ramp(&[3, 5, 4, 4], 0.07);
        let bt = ramp(&[5], 0.3);
        let serial = Pool::new(1);
        for x in [&x1, &xn] {
            let want = conv2d_forward_with_pool(x, &w, Some(&bias), 1, 1, &serial);
            let want_t = conv_transpose2d_forward_with_pool(x, &wt, Some(&bt), 2, 1, &serial);
            for threads in [2usize, 4] {
                let pool = Pool::new(threads);
                let got = conv2d_forward_with_pool(x, &w, Some(&bias), 1, 1, &pool);
                assert_eq!(want.as_slice(), got.as_slice(), "conv2d @ {threads}");
                let got_t = conv_transpose2d_forward_with_pool(x, &wt, Some(&bt), 2, 1, &pool);
                assert_eq!(
                    want_t.as_slice(),
                    got_t.as_slice(),
                    "conv_transpose2d @ {threads}"
                );
            }
        }
    }

    #[test]
    fn conv_transpose2d_upsamples() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 4, 4]));
        let w = g.input(Tensor::ones(&[1, 1, 4, 4]));
        let y = conv_transpose2d(&mut g, x, w, None, 2, 1);
        assert_eq!(g.value(y).shape(), &[1, 1, 8, 8]);
    }

    #[test]
    fn conv_transpose_is_adjoint_of_conv() {
        // <conv(x), y> == <x, conv_transpose(y)> with shared weight
        let x0 = ramp(&[1, 2, 6, 6], 0.3);
        let w0 = ramp(&[3, 2, 4, 4], 0.17); // conv weight [O=3, C=2]
        let mut g = Graph::new();
        let x = g.input(x0.clone());
        let w = g.input(w0.clone());
        let y = conv2d(&mut g, x, w, None, 2, 1);
        let yv = g.value(y).clone(); // [1,3,3,3]
        let probe = ramp(yv.shape(), 0.23);
        let lhs: f32 = yv
            .as_slice()
            .iter()
            .zip(probe.as_slice())
            .map(|(a, b)| a * b)
            .sum();

        // conv_transpose with weight [C_in=3, C_out=2] = same tensor viewed
        // as [3,2,4,4]? No — PyTorch convT weight is [in=O, out=C]: to be the
        // adjoint we must transpose the first two axes of w0.
        let mut wt = Tensor::zeros(&[3, 2, 4, 4]);
        for o in 0..3 {
            for c in 0..2 {
                for i in 0..4 {
                    for j in 0..4 {
                        wt.set(&[o, c, i, j], w0.get(&[o, c, i, j]));
                    }
                }
            }
        }
        let mut g2 = Graph::new();
        let p = g2.input(probe);
        let w2 = g2.input(wt);
        let back = conv_transpose2d(&mut g2, p, w2, None, 2, 1);
        let bv = g2.value(back);
        assert_eq!(bv.shape(), x0.shape());
        let rhs: f32 = bv
            .as_slice()
            .iter()
            .zip(x0.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn conv_transpose2d_gradients() {
        let x0 = ramp(&[1, 2, 3, 3], 0.25);
        let w0 = ramp(&[2, 3, 4, 4], 0.09); // [C_in=2, C_out=3]
        let b0 = ramp(&[3], 0.2);

        let px = Param::new(x0.clone(), "x");
        let pw = Param::new(w0.clone(), "w");
        let pb = Param::new(b0.clone(), "b");
        let mut g = Graph::new();
        let x = g.param(&px);
        let w = g.param(&pw);
        let b = g.param(&pb);
        let y = conv_transpose2d(&mut g, x, w, Some(b), 2, 1);
        let target = Tensor::zeros(g.value(y).shape());
        let loss = mse_loss(&mut g, y, &target);
        g.backward(loss);

        let loss_with = |xt: &Tensor, wt: &Tensor, bt: &Tensor| {
            let mut g2 = Graph::new();
            let x2 = g2.input(xt.clone());
            let w2 = g2.input(wt.clone());
            let b2 = g2.input(bt.clone());
            let y2 = conv_transpose2d(&mut g2, x2, w2, Some(b2), 2, 1);
            let t2 = Tensor::zeros(g2.value(y2).shape());
            let l2 = mse_loss(&mut g2, y2, &t2);
            g2.value(l2).as_slice()[0]
        };
        grad_check(|t| loss_with(t, &w0, &b0), &x0, &px.grad(), 3e-2);
        grad_check(|t| loss_with(&x0, t, &b0), &w0, &pw.grad(), 3e-2);
        grad_check(|t| loss_with(&x0, &w0, t), &b0, &pb.grad(), 3e-2);
    }
}
