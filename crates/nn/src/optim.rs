//! Optimizers and learning-rate schedules.
//!
//! The paper trains with Adam (lr 0.002, weight decay 1e-4) and halves the
//! learning rate every 2 epochs (Table 8); [`Adam`] and [`StepLr`] implement
//! exactly that recipe.

use crate::graph::Param;
use litho_tensor::Tensor;

/// Adam optimizer with optional L2 weight decay (PyTorch `Adam` semantics:
/// decay is added to the gradient, not decoupled).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Param>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u32,
}

impl Adam {
    /// Creates an optimizer over `params` with the given learning rate and
    /// PyTorch-default betas `(0.9, 0.999)` and `eps = 1e-8`.
    ///
    /// Non-trainable buffers (see [`Param::buffer`]) are filtered out, so a
    /// module's full `params()` list can be passed directly.
    pub fn new(params: Vec<Param>, lr: f32) -> Self {
        let params: Vec<Param> = params.into_iter().filter(|p| !p.is_buffer()).collect();
        let m = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        let v = params.iter().map(|p| Tensor::zeros(&p.shape())).collect();
        Self {
            params,
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m,
            v,
            t: 0,
        }
    }

    /// Sets the L2 weight-decay coefficient (builder style).
    #[must_use]
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (used together with [`StepLr`]).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one Adam update from the accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            let grad = p.grad();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let (b1, b2, eps, lr, wd) =
                (self.beta1, self.beta2, self.eps, self.lr, self.weight_decay);
            p.update_value(|value| {
                let vd = value.as_mut_slice();
                let gd = grad.as_slice();
                let md = m.as_mut_slice();
                let vvd = v.as_mut_slice();
                for j in 0..vd.len() {
                    let g = gd[j] + wd * vd[j];
                    md[j] = b1 * md[j] + (1.0 - b1) * g;
                    vvd[j] = b2 * vvd[j] + (1.0 - b2) * g * g;
                    let mhat = md[j] / bc1;
                    let vhat = vvd[j] / bc2;
                    vd[j] -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }
}

/// Step-decay learning-rate schedule: `lr = base · gamma^(epoch / step)`.
///
/// The paper's recipe (Table 8) is `StepLr::new(0.002, 2, 0.5)`.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base: f32,
    step_size: usize,
    gamma: f32,
}

impl StepLr {
    /// Creates a schedule decaying by `gamma` every `step_size` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(base: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        Self {
            base,
            step_size,
            gamma,
        }
    }

    /// Learning rate for a zero-indexed epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.step_size) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ops;

    #[test]
    fn adam_minimises_quadratic() {
        // minimize mean((x - 3)^2) elementwise
        let p = Param::new(Tensor::zeros(&[4]), "x");
        let target = Tensor::full(&[4], 3.0);
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            opt.zero_grad();
            let mut g = Graph::new();
            let x = g.param(&p);
            let loss = ops::mse_loss(&mut g, x, &target);
            g.backward(loss);
            opt.step();
        }
        for &v in p.value().as_slice() {
            assert!((v - 3.0).abs() < 1e-2, "converged to {v}");
        }
    }

    #[test]
    fn weight_decay_shrinks_solution() {
        let run = |wd: f32| {
            let p = Param::new(Tensor::full(&[1], 1.0), "x");
            let target = Tensor::full(&[1], 1.0);
            let mut opt = Adam::new(vec![p.clone()], 0.05).with_weight_decay(wd);
            for _ in 0..400 {
                opt.zero_grad();
                let mut g = Graph::new();
                let x = g.param(&p);
                let loss = ops::mse_loss(&mut g, x, &target);
                g.backward(loss);
                opt.step();
            }
            p.value().as_slice()[0]
        };
        let free = run(0.0);
        let decayed = run(1.0);
        assert!((free - 1.0).abs() < 1e-2);
        assert!(decayed < free - 0.05, "decayed {decayed} vs free {free}");
    }

    #[test]
    fn zero_grad_resets() {
        let p = Param::new(Tensor::ones(&[2]), "x");
        p.accumulate_grad(&Tensor::ones(&[2]));
        let opt = Adam::new(vec![p.clone()], 0.1);
        opt.zero_grad();
        assert_eq!(p.grad().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn step_lr_halves_every_two_epochs() {
        let sched = StepLr::new(0.002, 2, 0.5);
        assert_eq!(sched.lr_at(0), 0.002);
        assert_eq!(sched.lr_at(1), 0.002);
        assert_eq!(sched.lr_at(2), 0.001);
        assert_eq!(sched.lr_at(3), 0.001);
        assert_eq!(sched.lr_at(4), 0.0005);
        assert_eq!(sched.lr_at(9), 0.002 * 0.5f32.powi(4));
    }

    #[test]
    fn adam_counts_steps() {
        let p = Param::new(Tensor::ones(&[1]), "x");
        let mut opt = Adam::new(vec![p], 0.1);
        assert_eq!(opt.steps(), 0);
        opt.step();
        opt.step();
        assert_eq!(opt.steps(), 2);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }
}
