//! Binary checkpointing of parameter lists.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   b"LNNCKPT1"
//! count   u32
//! repeat count times:
//!   name_len u32, name bytes (UTF-8)
//!   rank     u32, dims u64 × rank
//!   data     f32 × numel
//! ```
//!
//! Parameters are matched **by position**; names and shapes are verified on
//! load so architecture drift is caught instead of silently mis-assigned.

use crate::graph::Param;
use litho_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LNNCKPT1";

/// Saves `params` to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(path: impl AsRef<Path>, params: &[Param]) -> io::Result<()> {
    // litho-lint: allow(io-discipline): checkpoint format is owned here; litho-data would cycle on litho-nn
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let value = p.value();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads a checkpoint into `params` (same order as saved).
///
/// The file is read in one bulk I/O pass and parsed with every length field
/// validated against the bytes actually remaining, so a corrupt header can
/// never drive a huge allocation. Trailing bytes after the last parameter
/// are rejected. All tensors are staged first and committed only after the
/// whole file has parsed, so a malformed file leaves `params` untouched
/// rather than half-overwritten.
///
/// # Errors
///
/// Returns an error if the file is malformed (truncated, oversized length
/// fields, trailing garbage), or if the parameter count, a name, or a shape
/// does not match.
pub fn load_params(path: impl AsRef<Path>, params: &[Param]) -> io::Result<()> {
    // litho-lint: allow(io-discipline): checkpoint format is owned here; litho-data would cycle on litho-nn
    let buf = std::fs::read(path)?;
    let mut pos = 0usize;
    let magic = take(&buf, &mut pos, MAGIC.len(), "magic")?;
    if magic != MAGIC {
        return Err(invalid("not a litho-nn checkpoint (bad magic)"));
    }
    let count = take_u32(&buf, &mut pos, "param count")? as usize;
    if count != params.len() {
        return Err(invalid(format!(
            "checkpoint holds {count} params but the model has {}",
            params.len()
        )));
    }
    let mut staged: Vec<Tensor> = Vec::with_capacity(params.len());
    for p in params {
        // every `take` bounds-checks against the remaining bytes, so a
        // corrupt name_len/rank/dim fails fast instead of allocating
        let name_len = take_u32(&buf, &mut pos, "name length")? as usize;
        let name_bytes = take(&buf, &mut pos, name_len, "param name")?;
        let name = std::str::from_utf8(name_bytes).map_err(invalid)?;
        if name != p.name() {
            return Err(invalid(format!(
                "param name mismatch: checkpoint '{name}' vs model '{}'",
                p.name()
            )));
        }
        let rank = take_u32(&buf, &mut pos, "rank")? as usize;
        if rank
            .checked_mul(8)
            .map_or(true, |bytes| bytes > buf.len() - pos)
        {
            return Err(invalid(format!(
                "rank {rank} exceeds the remaining file length"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let b = take(&buf, &mut pos, 8, "dimension")?;
            let d = u64::from_le_bytes(b.try_into().expect("8-byte slice"));
            shape.push(usize::try_from(d).map_err(invalid)?);
        }
        if shape != p.shape() {
            return Err(invalid(format!(
                "shape mismatch for '{name}': checkpoint {shape:?} vs model {:?}",
                p.shape()
            )));
        }
        // shape == model shape, so numel is the model's (sane) element count
        let numel: usize = shape.iter().product();
        let data_bytes = take(&buf, &mut pos, numel * 4, "tensor data")?;
        let data: Vec<f32> = data_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        staged.push(Tensor::from_vec(data, &shape));
    }
    if pos != buf.len() {
        return Err(invalid(format!(
            "{} trailing bytes after the last parameter",
            buf.len() - pos
        )));
    }
    // commit atomically: nothing above may fail past this point
    for (p, t) in params.iter().zip(staged) {
        p.set_value(t);
    }
    Ok(())
}

fn invalid(msg: impl Into<Box<dyn std::error::Error + Send + Sync>>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Consumes `n` bytes from `buf` at `*pos`, erroring (without advancing or
/// allocating) if fewer remain.
fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize, what: &str) -> io::Result<&'a [u8]> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("checkpoint truncated while reading {what}"),
            )
        })?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize, what: &str) -> io::Result<u32> {
    let b = take(buf, pos, 4, what)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("litho_nn_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let a = Param::new(Tensor::from_vec(vec![1.5, -2.5, 3.0], &[3]), "a");
        let b = Param::new(
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]),
            "b",
        );
        let path = tmp("roundtrip.ckpt");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let a2 = Param::new(Tensor::zeros(&[3]), "a");
        let b2 = Param::new(Tensor::zeros(&[3, 4]), "b");
        load_params(&path, &[a2.clone(), b2.clone()]).unwrap();
        assert_eq!(a2.value(), a.value());
        assert_eq!(b2.value(), b.value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_count() {
        let a = Param::new(Tensor::zeros(&[2]), "a");
        let path = tmp("count.ckpt");
        save_params(&path, std::slice::from_ref(&a)).unwrap();
        let err = load_params(&path, &[a.clone(), a.clone()]).unwrap_err();
        assert!(err.to_string().contains("holds 1 params"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_name_mismatch() {
        let a = Param::new(Tensor::zeros(&[2]), "weight");
        let path = tmp("name.ckpt");
        save_params(&path, &[a]).unwrap();
        let b = Param::new(Tensor::zeros(&[2]), "bias");
        let err = load_params(&path, &[b]).unwrap_err();
        assert!(err.to_string().contains("name mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Param::new(Tensor::zeros(&[2]), "w");
        let path = tmp("shape.ckpt");
        save_params(&path, &[a]).unwrap();
        let b = Param::new(Tensor::zeros(&[3]), "w");
        let err = load_params(&path, &[b]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxx").unwrap();
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_leaves_params_untouched() {
        // regression: the loader used to mutate params in place, so a file
        // truncated mid-way left the model half-overwritten
        let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]), "a");
        let b = Param::new(Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]), "b");
        let path = tmp("trunc.ckpt");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();
        // cut the file inside the second param's data
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();

        let a2 = Param::new(Tensor::from_vec(vec![-1.0, -1.0], &[2]), "a");
        let b2 = Param::new(Tensor::from_vec(vec![-2.0, -2.0, -2.0], &[3]), "b");
        let err = load_params(&path, &[a2.clone(), b2.clone()]).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // neither param moved — including the first one, which parsed fine
        assert_eq!(a2.value().as_slice(), &[-1.0, -1.0]);
        assert_eq!(b2.value().as_slice(), &[-2.0, -2.0, -2.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_huge_name_len_without_allocating() {
        // regression: a corrupt name_len used to drive a huge Vec allocation
        // before hitting EOF
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one param
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd name_len
        let path = tmp("hugename.ckpt");
        std::fs::write(&path, &bytes).unwrap();
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let err = load_params(&path, &[p]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_huge_rank_and_dims() {
        // absurd rank fails the remaining-length check instead of allocating
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name_len 1
        bytes.push(b'w');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd rank
        let path = tmp("hugerank.ckpt");
        std::fs::write(&path, &bytes).unwrap();
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(err.to_string().contains("rank"), "{err}");
        std::fs::remove_file(&path).ok();

        // an absurd dimension is caught as a shape mismatch before any data
        // read is attempted
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'w');
        bytes.extend_from_slice(&1u32.to_le_bytes()); // rank 1
        bytes.extend_from_slice(&(u64::MAX).to_le_bytes()); // absurd dim
        let path = tmp("hugedim.ckpt");
        std::fs::write(&path, &bytes).unwrap();
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(
            err.to_string().contains("shape mismatch")
                || err.kind() == std::io::ErrorKind::InvalidData,
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]), "a");
        let path = tmp("trailing.ckpt");
        save_params(&path, std::slice::from_ref(&a)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"junk");
        std::fs::write(&path, &bytes).unwrap();
        let a2 = Param::new(Tensor::zeros(&[2]), "a");
        let err = load_params(&path, std::slice::from_ref(&a2)).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // the atomic-commit rule applies here too
        assert_eq!(a2.value().as_slice(), &[0.0, 0.0]);
        std::fs::remove_file(path).ok();
    }
}
