//! Binary checkpointing of parameter lists.
//!
//! Format (little-endian):
//!
//! ```text
//! magic   b"LNNCKPT1"
//! count   u32
//! repeat count times:
//!   name_len u32, name bytes (UTF-8)
//!   rank     u32, dims u64 × rank
//!   data     f32 × numel
//! ```
//!
//! Parameters are matched **by position**; names and shapes are verified on
//! load so architecture drift is caught instead of silently mis-assigned.

use crate::graph::Param;
use litho_tensor::Tensor;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"LNNCKPT1";

/// Saves `params` to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(path: impl AsRef<Path>, params: &[Param]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let value = p.value();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
        w.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &d in value.shape() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads a checkpoint into `params` (same order as saved).
///
/// # Errors
///
/// Returns an error if the file is malformed, or if the parameter count,
/// a name, or a shape does not match.
pub fn load_params(path: impl AsRef<Path>, params: &[Param]) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a litho-nn checkpoint (bad magic)",
        ));
    }
    let count = read_u32(&mut r)? as usize;
    if count != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "checkpoint holds {count} params but the model has {}",
                params.len()
            ),
        ));
    }
    for p in params {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name =
            String::from_utf8(name).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if name != p.name() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "param name mismatch: checkpoint '{name}' vs model '{}'",
                    p.name()
                ),
            ));
        }
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            shape.push(u64::from_le_bytes(b) as usize);
        }
        if shape != p.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shape mismatch for '{name}': checkpoint {shape:?} vs model {:?}",
                    p.shape()
                ),
            ));
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0f32; numel];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        p.set_value(Tensor::from_vec(data, &shape));
    }
    Ok(())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("litho_nn_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let a = Param::new(Tensor::from_vec(vec![1.5, -2.5, 3.0], &[3]), "a");
        let b = Param::new(
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]),
            "b",
        );
        let path = tmp("roundtrip.ckpt");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let a2 = Param::new(Tensor::zeros(&[3]), "a");
        let b2 = Param::new(Tensor::zeros(&[3, 4]), "b");
        load_params(&path, &[a2.clone(), b2.clone()]).unwrap();
        assert_eq!(a2.value(), a.value());
        assert_eq!(b2.value(), b.value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_count() {
        let a = Param::new(Tensor::zeros(&[2]), "a");
        let path = tmp("count.ckpt");
        save_params(&path, std::slice::from_ref(&a)).unwrap();
        let err = load_params(&path, &[a.clone(), a.clone()]).unwrap_err();
        assert!(err.to_string().contains("holds 1 params"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_name_mismatch() {
        let a = Param::new(Tensor::zeros(&[2]), "weight");
        let path = tmp("name.ckpt");
        save_params(&path, &[a]).unwrap();
        let b = Param::new(Tensor::zeros(&[2]), "bias");
        let err = load_params(&path, &[b]).unwrap_err();
        assert!(err.to_string().contains("name mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Param::new(Tensor::zeros(&[2]), "w");
        let path = tmp("shape.ckpt");
        save_params(&path, &[a]).unwrap();
        let b = Param::new(Tensor::zeros(&[3]), "w");
        let err = load_params(&path, &[b]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("magic.ckpt");
        std::fs::write(&path, b"NOTACKPTxxxx").unwrap();
        let p = Param::new(Tensor::zeros(&[1]), "w");
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(err.to_string().contains("bad magic"));
        std::fs::remove_file(path).ok();
    }
}
