//! Layer modules: stateful wrappers that own [`Param`]s and record ops onto a
//! [`Graph`] per forward pass.

use crate::graph::{Graph, Param, Var};
use crate::infer::{self, InferCtx};
use crate::ops;
use crate::ops::BatchNormState;
use litho_tensor::{init, Tensor};
use rand::Rng;
use std::sync::atomic::{AtomicBool, Ordering};

/// A neural-network building block.
///
/// `forward` is `&self` (graphs are rebuilt per step); training/eval mode is
/// toggled through interior mutability so whole models can stay shared.
pub trait Module {
    /// Records this module's computation on the tape.
    fn forward(&self, g: &mut Graph, x: Var) -> Var;

    /// Tape-free inference: consumes `x`, returns the module output,
    /// **bit-identical** to recording [`Module::forward`] on a fresh graph
    /// and reading the result — with no tape, no per-forward weight clones
    /// (weights are read by borrow) and activation buffers recycled through
    /// `ctx` (see [`InferCtx`]).
    ///
    /// The default implementation falls back to a throwaway graph, so every
    /// module supports `infer` out of the box; layers override it with
    /// graph-free kernels. Mode-dependent layers (batch norm) keep their
    /// `forward` semantics in either mode: the tape-free fast path engages
    /// in eval mode, training mode falls back to the graph op (which must
    /// update running statistics exactly as `forward` would).
    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let _ = ctx;
        infer::infer_via_graph(self, x)
    }

    /// All trainable parameters, in a stable order (used by optimizers and
    /// checkpointing).
    fn params(&self) -> Vec<Param>;

    /// Switches between training and inference behaviour (batch-norm etc.).
    fn set_training(&self, _training: bool) {}

    /// Whether the module is currently in training mode.
    ///
    /// Stateless modules (whose behaviour is mode-independent) report
    /// `false`; containers report `true` if any child does. Callers that
    /// temporarily force a mode (e.g. evaluation inside a training loop)
    /// use this to restore the previous mode afterwards.
    fn is_training(&self) -> bool {
        false
    }

    /// Total number of trainable scalars (buffers excluded).
    fn param_count(&self) -> usize {
        self.params()
            .iter()
            .filter(|p| !p.is_buffer())
            .map(Param::numel)
            .sum()
    }
}

impl<M: Module + ?Sized> Module for Box<M> {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        (**self).forward(g, x)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        (**self).infer(ctx, x)
    }

    fn params(&self) -> Vec<Param> {
        (**self).params()
    }

    fn set_training(&self, training: bool) {
        (**self).set_training(training);
    }

    fn is_training(&self) -> bool {
        (**self).is_training()
    }
}

/// 2-D convolution layer (PyTorch `nn.Conv2d` semantics).
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
}

impl Conv2d {
    /// Creates a conv layer with Kaiming-uniform weights.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = in_c * k * k;
        let weight = Param::new(
            init::kaiming_uniform(&[out_c, in_c, k, k], fan_in, rng),
            "conv.weight",
        );
        let bias = bias.then(|| {
            let bound = 1.0 / (fan_in as f32).sqrt();
            Param::new(init::uniform(&[out_c], -bound, bound, rng), "conv.bias")
        });
        Self {
            weight,
            bias,
            stride,
            pad,
        }
    }

    /// Tape-free forward that borrows its input (for call sites that still
    /// need `x` afterwards — skip joins, bypass branches). Weights are read
    /// by borrow; the output comes from the `ctx` buffer pool.
    pub fn infer_ref(&self, ctx: &mut InferCtx, x: &Tensor) -> Tensor {
        let w = self.weight.value_ref();
        let b = self.bias.as_ref().map(Param::value_ref);
        ops::conv2d_infer(ctx, x, &w, b.as_deref(), self.stride, self.pad)
    }
}

impl Module for Conv2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        ops::conv2d(g, x, w, b, self.stride, self.pad)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let out = self.infer_ref(ctx, &x);
        ctx.recycle(x);
        out
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// 2-D transposed convolution layer (PyTorch `nn.ConvTranspose2d` semantics).
#[derive(Debug)]
pub struct ConvTranspose2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
}

impl ConvTranspose2d {
    /// Creates a transposed-conv layer with Kaiming-uniform weights.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = out_c * k * k; // PyTorch fan-in convention for convT
        let weight = Param::new(
            init::kaiming_uniform(&[in_c, out_c, k, k], fan_in, rng),
            "convt.weight",
        );
        let bias = bias.then(|| {
            let bound = 1.0 / (fan_in as f32).sqrt();
            Param::new(init::uniform(&[out_c], -bound, bound, rng), "convt.bias")
        });
        Self {
            weight,
            bias,
            stride,
            pad,
        }
    }

    /// Tape-free forward that borrows its input; see [`Conv2d::infer_ref`].
    pub fn infer_ref(&self, ctx: &mut InferCtx, x: &Tensor) -> Tensor {
        let w = self.weight.value_ref();
        let b = self.bias.as_ref().map(Param::value_ref);
        ops::conv_transpose2d_infer(ctx, x, &w, b.as_deref(), self.stride, self.pad)
    }
}

impl Module for ConvTranspose2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(&self.weight);
        let b = self.bias.as_ref().map(|b| g.param(b));
        ops::conv_transpose2d(g, x, w, b, self.stride, self.pad)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let out = self.infer_ref(ctx, &x);
        ctx.recycle(x);
        out
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            p.push(b.clone());
        }
        p
    }
}

/// Batch normalisation layer with running statistics.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    state: BatchNormState,
    // atomic (not Cell) so models stay Sync and shareable across the
    // litho-parallel workers; toggled rarely, read once per forward
    training: AtomicBool,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `c` channels (γ=1, β=0).
    pub fn new(c: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[c]), "bn.gamma"),
            beta: Param::new(Tensor::zeros(&[c]), "bn.beta"),
            state: BatchNormState::new(c),
            training: AtomicBool::new(true),
        }
    }

    /// Read access to the running statistics (for tests/inspection).
    pub fn state(&self) -> &BatchNormState {
        &self.state
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let gamma = g.param(&self.gamma);
        let beta = g.param(&self.beta);
        ops::batch_norm2d(
            g,
            x,
            gamma,
            beta,
            &self.state,
            self.training.load(Ordering::Relaxed),
        )
    }

    fn infer(&self, ctx: &mut InferCtx, mut x: Tensor) -> Tensor {
        if self.training.load(Ordering::Relaxed) {
            // training-mode semantics (batch statistics + running-stat
            // update) belong to the graph op; infer must not diverge from
            // forward, so fall back rather than silently freezing stats
            let _ = ctx;
            return infer::infer_via_graph(self, x);
        }
        assert_eq!(x.rank(), 4, "batch_norm2d expects NCHW input");
        let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        let gamma = self.gamma.value_ref();
        let beta = self.beta.value_ref();
        let rm = self.state.running_mean.value_ref();
        let rv = self.state.running_var.value_ref();
        assert_eq!(gamma.numel(), c, "gamma length mismatch");
        assert_eq!(beta.numel(), c, "beta length mismatch");
        let eps = self.state.eps;
        let hw = h * w;
        let (gd, bd) = (gamma.as_slice(), beta.as_slice());
        let (rmd, rvd) = (rm.as_slice(), rv.as_slice());
        // same inv_std expression as the graph op, then the shared
        // normalisation kernel — one definition for both execution paths
        let inv_std: Vec<f32> = rvd.iter().map(|&v| 1.0 / (v + eps).sqrt()).collect();
        let xd = x.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * hw;
                ops::normalize_channel(
                    &mut xd[base..base + hw],
                    rmd[ci],
                    inv_std[ci],
                    gd[ci],
                    bd[ci],
                );
            }
        }
        drop((gamma, beta, rm, rv));
        x
    }

    fn params(&self) -> Vec<Param> {
        // running statistics ride along as buffers so checkpoints restore
        // eval-mode behaviour exactly; optimizers skip them
        vec![
            self.gamma.clone(),
            self.beta.clone(),
            self.state.running_mean.clone(),
            self.state.running_var.clone(),
        ]
    }

    fn set_training(&self, training: bool) {
        self.training.store(training, Ordering::Relaxed);
    }

    fn is_training(&self) -> bool {
        self.training.load(Ordering::Relaxed)
    }
}

/// Leaky ReLU activation layer.
#[derive(Debug, Clone, Copy)]
pub struct LeakyRelu {
    slope: f32,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(slope: f32) -> Self {
        Self { slope }
    }
}

impl Module for LeakyRelu {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        ops::leaky_relu(g, x, self.slope)
    }
    fn infer(&self, _ctx: &mut InferCtx, mut x: Tensor) -> Tensor {
        infer::leaky_relu_inplace(&mut x, self.slope);
        x
    }
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// ReLU activation layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Module for Relu {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        ops::relu(g, x)
    }
    fn infer(&self, _ctx: &mut InferCtx, mut x: Tensor) -> Tensor {
        infer::relu_inplace(&mut x);
        x
    }
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Tanh activation layer.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh;

impl Module for Tanh {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        ops::tanh(g, x)
    }
    fn infer(&self, _ctx: &mut InferCtx, mut x: Tensor) -> Tensor {
        infer::tanh_inplace(&mut x);
        x
    }
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// Average-pooling layer (square window, stride = window).
#[derive(Debug, Clone, Copy)]
pub struct AvgPool2d {
    k: usize,
}

impl AvgPool2d {
    /// Creates an average-pooling layer with window and stride `k`.
    pub fn new(k: usize) -> Self {
        Self { k }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        ops::avg_pool2d(g, x, self.k)
    }
    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let out = ops::avg_pool2d_infer(ctx, &x, self.k);
        ctx.recycle(x);
        out
    }
    fn params(&self) -> Vec<Param> {
        Vec::new()
    }
}

/// A chain of modules applied in order.
///
/// Boxed layers carry `Send + Sync` bounds so a `Sequential` (like every
/// concrete layer) can be shared with `litho-parallel` workers.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module + Send + Sync>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a module (builder style).
    #[must_use]
    pub fn push(mut self, m: impl Module + Send + Sync + 'static) -> Self {
        self.layers.push(Box::new(m));
        self
    }

    /// Number of layers in the chain.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Returns `true` if the chain has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let mut v = x;
        for l in &self.layers {
            v = l.forward(g, v);
        }
        v
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let mut v = x;
        for l in &self.layers {
            v = l.infer(ctx, v);
        }
        v
    }

    fn params(&self) -> Vec<Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn set_training(&self, training: bool) {
        for l in &self.layers {
            l.set_training(training);
        }
    }

    fn is_training(&self) -> bool {
        self.layers.iter().any(|l| l.is_training())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::init::seeded_rng;

    #[test]
    fn conv_layer_shapes_and_params() {
        let mut rng = seeded_rng(1);
        let conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
        assert_eq!(conv.params().len(), 2);
        assert_eq!(conv.param_count(), 8 * 3 * 3 * 3 + 8);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 8, 8]));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn conv_transpose_layer_upsamples() {
        let mut rng = seeded_rng(2);
        let convt = ConvTranspose2d::new(4, 2, 4, 2, 1, true, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 4, 8, 8]));
        let y = convt.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 2, 16, 16]);
    }

    #[test]
    fn sequential_chains_and_collects_params() {
        let mut rng = seeded_rng(3);
        let net = Sequential::new()
            .push(Conv2d::new(1, 4, 3, 1, 1, true, &mut rng))
            .push(BatchNorm2d::new(4))
            .push(LeakyRelu::new(0.2))
            .push(Conv2d::new(4, 1, 3, 1, 1, true, &mut rng));
        assert_eq!(net.len(), 4);
        // conv(w,b) + bn(gamma,beta + 2 running-stat buffers) + conv(w,b)
        assert_eq!(net.params().len(), 8);
        assert_eq!(net.params().iter().filter(|p| !p.is_buffer()).count(), 6);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 8, 8]));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 8, 8]);
    }

    #[test]
    fn is_training_reflects_mode() {
        let net = Sequential::new()
            .push(LeakyRelu::new(0.1))
            .push(BatchNorm2d::new(2));
        assert!(net.is_training(), "batch-norm starts in training mode");
        net.set_training(false);
        assert!(!net.is_training());
        net.set_training(true);
        assert!(net.is_training());
        // stateless modules have no mode
        assert!(!LeakyRelu::new(0.1).is_training());
    }

    #[test]
    fn set_training_propagates_to_batchnorm() {
        let net = Sequential::new().push(BatchNorm2d::new(2));
        net.set_training(false);
        // eval mode: running stats (zeros mean, ones var) are used, so a
        // constant input maps to roughly itself.
        let mut g = Graph::new();
        let x = g.input(Tensor::full(&[1, 2, 2, 2], 0.5));
        let y = net.forward(&mut g, x);
        assert!((g.value(y).as_slice()[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn layers_and_params_are_shareable_across_threads() {
        // compile-time guarantee the parallel fan-out relies on
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Param>();
        assert_send_sync::<Conv2d>();
        assert_send_sync::<ConvTranspose2d>();
        assert_send_sync::<BatchNorm2d>();
        assert_send_sync::<Sequential>();
    }

    #[test]
    fn avg_pool_layer() {
        let pool = AvgPool2d::new(2);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 1, 4, 4]));
        let y = pool.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert!(pool.params().is_empty());
    }

    fn ramp(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.15).collect(),
            shape,
        )
    }

    /// Graph forward vs tape-free infer for every layer kind, both modes.
    #[test]
    fn infer_is_bit_identical_to_graph_forward() {
        let mut rng = seeded_rng(11);
        let net = Sequential::new()
            .push(Conv2d::new(1, 4, 3, 1, 1, true, &mut rng))
            .push(BatchNorm2d::new(4))
            .push(LeakyRelu::new(0.2))
            .push(AvgPool2d::new(2))
            .push(ConvTranspose2d::new(4, 2, 4, 2, 1, true, &mut rng))
            .push(Relu)
            .push(Conv2d::new(2, 1, 3, 1, 1, true, &mut rng))
            .push(Tanh);
        let x = ramp(&[2, 1, 8, 8]);
        for training in [false, true] {
            net.set_training(training);
            let mut g = Graph::new();
            let vx = g.input(x.clone());
            let y = net.forward(&mut g, vx);
            let want = g.value(y).clone();
            // re-run infer from the same running-stat state: training-mode
            // forward above moved the stats, so reset per mode via a fresh
            // forward ordering — instead compare against a second forward
            // from identical state by snapshotting params first.
            net.set_training(training);
            let mut ctx = InferCtx::new();
            let got = net.infer(&mut ctx, x.clone());
            if training {
                // training-mode batch norm folds running stats per forward,
                // so the two runs saw different stats only if eval; in
                // training both use *batch* stats — outputs still match
                assert_eq!(want.as_slice(), got.as_slice(), "training mode");
            } else {
                assert_eq!(want.as_slice(), got.as_slice(), "eval mode");
            }
            assert_eq!(want.shape(), got.shape());
        }
    }

    /// A second eval-mode forward through a warm context allocates nothing.
    #[test]
    fn infer_ctx_recycles_across_calls() {
        let mut rng = seeded_rng(12);
        let net = Sequential::new()
            .push(Conv2d::new(1, 3, 3, 1, 1, true, &mut rng))
            .push(LeakyRelu::new(0.1))
            .push(Conv2d::new(3, 1, 3, 1, 1, true, &mut rng));
        net.set_training(false);
        let mut ctx = InferCtx::new();
        let x = ramp(&[1, 1, 8, 8]);
        let y = net.infer(&mut ctx, x.clone());
        ctx.recycle(y);
        let (_, misses_after_warmup) = ctx.alloc_stats();
        let y = net.infer(&mut ctx, x);
        ctx.recycle(y);
        let (hits, misses) = ctx.alloc_stats();
        assert_eq!(
            misses, misses_after_warmup,
            "warm call must not miss the buffer pool"
        );
        assert!(hits > 0, "warm call must reuse recycled buffers");
    }
}
