//! Define-by-run tape autograd.
//!
//! A [`Graph`] is rebuilt for every forward pass (like PyTorch's dynamic
//! graph). Operations append nodes holding the computed value, the parent
//! node ids and a backward closure; [`Graph::backward`] walks the tape in
//! reverse and accumulates gradients into the [`Param`]s that participated.
//!
//! The node-pushing API ([`Graph::push`]) is public so downstream crates can
//! register custom differentiable operations — the DOINN crate uses this for
//! its FFT-based Fourier Unit.

use litho_tensor::Tensor;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Handle to a node in a [`Graph`] (an activation or leaf tensor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The raw tape index (useful only for debugging).
    pub fn index(self) -> usize {
        self.0
    }
}

/// A trainable parameter: a shared, mutable `(value, grad)` pair that
/// outlives the per-step graphs.
///
/// Cloning a `Param` clones the *handle* (both clones refer to the same
/// storage), which is how optimizers and layers share parameters. Storage is
/// behind an `Arc<RwLock<…>>`, so parameters — and therefore whole models —
/// are `Send + Sync` and can be shared with the scoped workers of
/// `litho-parallel` (the large-tile fan-out and `predict_batch` rely on
/// this). Concurrent *reads* of the value are cheap; writers (optimizer
/// steps, gradient accumulation) serialize on the lock.
///
/// # Examples
///
/// ```
/// use litho_nn::{Graph, Param};
/// use litho_tensor::Tensor;
///
/// let p = Param::new(Tensor::from_vec(vec![2.0], &[1]), "w");
/// let mut g = Graph::new();
/// let w = g.param(&p);
/// let loss = litho_nn::ops::mse_loss(&mut g, w, &Tensor::from_vec(vec![0.0], &[1]));
/// g.backward(loss);
/// // d/dw mean((w-0)^2) = 2w = 4
/// assert!((p.grad().as_slice()[0] - 4.0).abs() < 1e-6);
/// ```
#[derive(Clone)]
pub struct Param {
    inner: Arc<RwLock<ParamStorage>>,
}

struct ParamStorage {
    value: Tensor,
    grad: Tensor,
    name: String,
    buffer: bool,
}

impl Param {
    /// Creates a parameter from an initial value. The gradient starts at 0.
    pub fn new(value: Tensor, name: &str) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self {
            inner: Arc::new(RwLock::new(ParamStorage {
                value,
                grad,
                name: name.to_string(),
                buffer: false,
            })),
        }
    }

    /// Read access to the storage; a poisoned lock (a writer panicked) is
    /// unrecoverable for numeric state, so it escalates to a panic here.
    fn read(&self) -> RwLockReadGuard<'_, ParamStorage> {
        self.inner.read().expect("Param lock poisoned")
    }

    fn write(&self) -> RwLockWriteGuard<'_, ParamStorage> {
        self.inner.write().expect("Param lock poisoned")
    }

    /// Creates a non-trainable *buffer* (e.g. batch-norm running statistics):
    /// saved/loaded with the model but skipped by optimizers.
    pub fn buffer(value: Tensor, name: &str) -> Self {
        let p = Self::new(value, name);
        p.write().buffer = true;
        p
    }

    /// Returns `true` for non-trainable buffers.
    pub fn is_buffer(&self) -> bool {
        self.read().buffer
    }

    /// A copy of the current value.
    pub fn value(&self) -> Tensor {
        self.read().value.clone()
    }

    /// Borrowed read access to the current value — no clone.
    ///
    /// This is how the tape-free inference path ([`Module::infer`]) reads
    /// weights: [`Graph::param`] must snapshot the value onto the tape (the
    /// backward pass needs the exact forward-time weights), but inference has
    /// no tape, so it borrows instead of copying the whole weight set per
    /// forward. The guard holds the parameter's read lock; concurrent readers
    /// (other inference workers) are unaffected, writers (optimizer steps)
    /// block until it drops, so keep guards scoped to one layer's kernel.
    ///
    /// [`Module::infer`]: crate::Module::infer
    pub fn value_ref(&self) -> ParamGuard<'_> {
        ParamGuard(self.read())
    }

    /// A copy of the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.read().grad.clone()
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.read().name.clone()
    }

    /// The parameter's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.read().value.shape().to_vec()
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.read().value.numel()
    }

    /// Replaces the value (used by optimizers and checkpoint loading).
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs.
    pub fn set_value(&self, value: Tensor) {
        let mut s = self.write();
        assert_eq!(
            s.value.shape(),
            value.shape(),
            "set_value must preserve shape of {}",
            s.name
        );
        s.value = value;
    }

    /// Applies `f` to the stored value in place.
    pub fn update_value(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.write().value);
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&self) {
        let mut s = self.write();
        s.grad.map_inplace(|_| 0.0);
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.write().grad.add_assign(g);
    }

    /// Returns `true` if two handles refer to the same storage.
    pub fn same_storage(&self, other: &Param) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.read();
        write!(f, "Param({:?}, shape {:?})", s.name, s.value.shape())
    }
}

/// Read guard over a [`Param`]'s value, returned by [`Param::value_ref`].
///
/// Dereferences to the stored [`Tensor`]; the parameter cannot be written
/// while any guard is alive.
pub struct ParamGuard<'a>(RwLockReadGuard<'a, ParamStorage>);

impl std::ops::Deref for ParamGuard<'_> {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        &self.0.value
    }
}

/// Backward closure contract: given `(grad_out, parent_values, out_value)`,
/// return one gradient tensor per parent (same order as the `parents` slice
/// passed to [`Graph::push`]). Each returned tensor must have its parent's
/// shape.
pub type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor) -> Vec<Tensor>>;

struct Node {
    value: Tensor,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    param: Option<Param>,
    needs_grad: bool,
}

/// A dynamic computation graph (tape).
///
/// Build a fresh graph per training step; it owns all intermediate
/// activations for that step.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.len())
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.nodes.push(Node {
            value,
            parents: Vec::new(),
            backward: None,
            param: None,
            needs_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds a parameter leaf; [`Graph::backward`] will accumulate into it.
    pub fn param(&mut self, p: &Param) -> Var {
        self.nodes.push(Node {
            value: p.value(),
            parents: Vec::new(),
            backward: None,
            param: Some(p.clone()),
            needs_grad: true,
        });
        Var(self.nodes.len() - 1)
    }

    /// The value computed at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Moves the value computed at `v` out of the graph (a scalar placeholder
    /// is left behind). For inference-only graphs that are about to be
    /// dropped: the output tensor escapes without a clone. Do not call
    /// [`Graph::backward`] (or read `v` again) afterwards.
    pub fn take_value(&mut self, v: Var) -> Tensor {
        std::mem::take(&mut self.nodes[v.0].value)
    }

    /// Whether gradients flow through `v` (any parameter upstream).
    pub fn needs_grad(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// Registers a new operation node.
    ///
    /// `backward` receives `(grad_out, parent_values, out_value)` and must
    /// return one gradient per parent. It is only invoked for nodes on a path
    /// between a [`Param`] and the loss, so it may be expensive without
    /// penalising inference-only graphs.
    pub fn push(&mut self, value: Tensor, parents: &[Var], backward: BackwardFn) -> Var {
        let needs_grad = parents.iter().any(|p| self.nodes[p.0].needs_grad);
        self.nodes.push(Node {
            value,
            parents: parents.to_vec(),
            backward: Some(backward),
            param: None,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Runs reverse-mode differentiation from `loss` (must be a scalar) and
    /// accumulates gradients into every participating [`Param`].
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&self, loss: Var) {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::ones(self.nodes[loss.0].value.shape()));
        for i in (0..=loss.0).rev() {
            let node = &self.nodes[i];
            if !node.needs_grad {
                continue;
            }
            let Some(g) = grads[i].take() else {
                continue;
            };
            if let Some(p) = &node.param {
                p.accumulate_grad(&g);
            }
            if let Some(bf) = &node.backward {
                let parent_values: Vec<&Tensor> = node
                    .parents
                    .iter()
                    .map(|p| &self.nodes[p.0].value)
                    .collect();
                let pgrads = bf(&g, &parent_values, &node.value);
                assert_eq!(
                    pgrads.len(),
                    node.parents.len(),
                    "backward fn returned wrong number of gradients"
                );
                for (pv, pg) in node.parents.iter().zip(pgrads) {
                    if !self.nodes[pv.0].needs_grad {
                        continue;
                    }
                    assert_eq!(
                        pg.shape(),
                        self.nodes[pv.0].value.shape(),
                        "gradient shape mismatch for parent node {}",
                        pv.0
                    );
                    match &mut grads[pv.0] {
                        Some(acc) => acc.add_assign(&pg),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn input_nodes_do_not_need_grad() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        assert!(!g.needs_grad(x));
        let p = Param::new(Tensor::ones(&[2]), "p");
        let w = g.param(&p);
        assert!(g.needs_grad(w));
    }

    #[test]
    fn needs_grad_propagates() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        let y = g.input(Tensor::ones(&[2]));
        let z = ops::add(&mut g, x, y);
        assert!(!g.needs_grad(z));
        let p = Param::new(Tensor::ones(&[2]), "p");
        let w = g.param(&p);
        let q = ops::add(&mut g, z, w);
        assert!(g.needs_grad(q));
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = mean((3x)^2), x = [1, 2] => d/dx = 2*9*x / 2 = 9x
        let p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]), "x");
        let mut g = Graph::new();
        let x = g.param(&p);
        let y = ops::scale(&mut g, x, 3.0);
        let loss = ops::mse_loss(&mut g, y, &Tensor::zeros(&[2]));
        g.backward(loss);
        let grad = p.grad();
        assert!((grad.as_slice()[0] - 9.0).abs() < 1e-5);
        assert!((grad.as_slice()[1] - 18.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let p = Param::new(Tensor::from_vec(vec![1.0], &[1]), "x");
        for _ in 0..2 {
            let mut g = Graph::new();
            let x = g.param(&p);
            let loss = ops::mse_loss(&mut g, x, &Tensor::zeros(&[1]));
            g.backward(loss);
        }
        // each pass adds 2x = 2
        assert!((p.grad().as_slice()[0] - 4.0).abs() < 1e-5);
        p.zero_grad();
        assert_eq!(p.grad().as_slice()[0], 0.0);
    }

    #[test]
    fn diamond_graph_accumulates_both_paths() {
        // loss = mean((x + x)^2) => dloss/dx = 2*(2x)*2 / 1 = 8x at numel 1
        let p = Param::new(Tensor::from_vec(vec![3.0], &[1]), "x");
        let mut g = Graph::new();
        let x = g.param(&p);
        let s = ops::add(&mut g, x, x);
        let loss = ops::mse_loss(&mut g, s, &Tensor::zeros(&[1]));
        g.backward(loss);
        assert!((p.grad().as_slice()[0] - 24.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn non_scalar_loss_panics() {
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[2]));
        g.backward(x);
    }

    #[test]
    fn param_handles_share_storage() {
        let p = Param::new(Tensor::ones(&[1]), "p");
        let q = p.clone();
        q.set_value(Tensor::from_vec(vec![5.0], &[1]));
        assert_eq!(p.value().as_slice()[0], 5.0);
        assert!(p.same_storage(&q));
    }
}
