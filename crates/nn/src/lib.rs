//! # litho-nn
//!
//! A compact, pure-Rust neural-network stack: define-by-run tape autograd
//! ([`Graph`]/[`Var`]/[`Param`]), the layer set needed by the DOINN paper's
//! architecture tables (convolution, transposed convolution, batch norm,
//! leaky-ReLU/tanh, average pooling), MSE/BCE losses, the Adam optimizer
//! with step-decay scheduling, and binary checkpointing.
//!
//! Downstream crates can register custom differentiable ops via
//! [`Graph::push`]; the `doinn` crate uses this for its FFT-based Fourier
//! Unit.
//!
//! # Examples
//!
//! Train a one-parameter "network" to fit a constant:
//!
//! ```
//! use litho_nn::{ops, Adam, Graph, Param};
//! use litho_tensor::Tensor;
//!
//! let w = Param::new(Tensor::zeros(&[1]), "w");
//! let mut opt = Adam::new(vec![w.clone()], 0.1);
//! for _ in 0..200 {
//!     opt.zero_grad();
//!     let mut g = Graph::new();
//!     let x = g.param(&w);
//!     let loss = ops::mse_loss(&mut g, x, &Tensor::from_vec(vec![1.0], &[1]));
//!     g.backward(loss);
//!     opt.step();
//! }
//! assert!((w.value().as_slice()[0] - 1.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
pub mod infer;
mod layers;
pub mod ops;
mod optim;
mod serial;

pub use graph::{BackwardFn, Graph, Param, ParamGuard, Var};
pub use infer::{CtxBank, InferCtx};
pub use layers::{
    AvgPool2d, BatchNorm2d, Conv2d, ConvTranspose2d, LeakyRelu, Module, Relu, Sequential, Tanh,
};
pub use optim::{Adam, StepLr};
pub use serial::{load_params, save_params};
