//! Regression test for the tape-free inference runtime's buffer reuse: a
//! warm DOINN forward must be allocation-flat — after the first call fills
//! the `InferCtx` pools, repeated forwards of the same shape allocate
//! **zero** new tensor buffers *and zero new complex scratch buffers*
//! *and zero fresh GEMM pack scratch* (tracked by the `litho-tensor` debug
//! allocation counters) and never miss either buffer pool. The complex-scratch counter covers the spectral
//! engine's staging: input modes, mode accumulators, complex weights, and
//! the FFT pack/transpose scratch all recycle through the `InferCtx`
//! complex buckets.
//!
//! This file holds a single test on purpose: the allocation counters are
//! process-global, and sibling tests running on other threads (cargo runs a
//! binary's tests concurrently) would pollute the deltas. Integration-test
//! binaries are separate processes, so this one observes only its own
//! allocations.

use doinn::{Doinn, DoinnConfig};
use litho_nn::{InferCtx, Module};
use litho_tensor::alloc_stats::{
    complex_scratch_allocations, gemm_pack_allocations, tensor_allocations,
};
use litho_tensor::{init::seeded_rng, Tensor};

#[test]
fn warm_doinn_infer_is_allocation_flat() {
    let mut rng = seeded_rng(21);
    let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
    model.set_training(false);
    let input = litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng);
    let mut ctx = InferCtx::with_pool(&litho_parallel::Pool::new(1));

    // warm-up: populates the buffer pool (and takes the graph path nowhere —
    // every layer of DOINN overrides infer)
    let y = model.infer(&mut ctx, input.clone());
    let reference = y.as_slice().to_vec();
    ctx.recycle(y);
    let (_, misses_after_warmup) = ctx.alloc_stats();
    let (_, cmisses_after_warmup) = ctx.complex_alloc_stats();
    assert!(
        cmisses_after_warmup > 0,
        "the spectral kernels must draw complex scratch from the ctx pool"
    );
    let complex_after_warmup = complex_scratch_allocations();
    let packs_after_warmup = gemm_pack_allocations();
    if cfg!(debug_assertions) {
        assert_eq!(
            complex_after_warmup, cmisses_after_warmup,
            "every cold complex-bucket miss is one fresh scratch buffer"
        );
    }

    // warm calls: bit-identical output, no pool misses, and (in debug
    // builds, where the counters are live) zero fresh tensor *or complex
    // scratch* allocations beyond the explicit input clone handed to each
    // call
    for call in 0..3 {
        let before = tensor_allocations();
        let x = input.clone(); // 1 counted allocation, owned by the call
        let after_clone = tensor_allocations();
        let y = model.infer(&mut ctx, x);
        let after_infer = tensor_allocations();
        assert_eq!(y.as_slice(), &reference[..], "call {call} output drifted");
        ctx.recycle(y);
        if cfg!(debug_assertions) {
            assert_eq!(
                after_clone - before,
                1,
                "the input clone is the only allocation the caller makes"
            );
            assert_eq!(
                after_infer, after_clone,
                "warm call {call} allocated fresh tensor buffers — the \
                 InferCtx pool failed to recycle"
            );
            assert_eq!(
                complex_scratch_allocations(),
                complex_after_warmup,
                "warm call {call} materialised fresh complex scratch — the \
                 InferCtx complex buckets failed to recycle"
            );
            assert_eq!(
                gemm_pack_allocations(),
                packs_after_warmup,
                "warm call {call} materialised fresh GEMM pack scratch — the \
                 conv drivers must draw pack buffers from the InferCtx pool"
            );
        }
        let (_, misses) = ctx.alloc_stats();
        assert_eq!(
            misses, misses_after_warmup,
            "warm call {call} missed the buffer pool"
        );
        let (_, cmisses) = ctx.complex_alloc_stats();
        assert_eq!(
            cmisses, cmisses_after_warmup,
            "warm call {call} missed the complex-scratch pool"
        );
    }

    // changing the input shape allocates once for the new sizes, then goes
    // flat again — buckets are keyed by element count, not wired to a shape
    for size in [32usize, 64] {
        let input = Tensor::zeros(&[1, 1, size, size]);
        let y = model.infer(&mut ctx, input.clone());
        ctx.recycle(y);
        let (_, misses_warm) = ctx.alloc_stats();
        let y = model.infer(&mut ctx, input);
        ctx.recycle(y);
        let (_, misses) = ctx.alloc_stats();
        assert_eq!(misses, misses_warm, "size {size} not flat after warm-up");
    }
}
