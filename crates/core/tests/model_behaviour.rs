//! Behavioural tests for the DOINN crate as a whole: learnability of litho-
//! like mappings, ablation ordering on a synthetic task, and metric
//! consistency with the geometry crate's IoU.

use doinn::{
    evaluate_model, seg_metrics, to_tanh_target, train_model, Doinn, DoinnConfig, TrainConfig,
};
use litho_geometry::binary_iou;
use litho_tensor::init::seeded_rng;
use litho_tensor::Tensor;
use rand::Rng;

/// A cheap "optical" surrogate: blur the mask with a 5×5 box filter and
/// threshold — same local-plus-smooth structure as real lithography, so a
/// litho-capable network must fit it quickly.
fn blur_threshold(mask: &Tensor, size: usize) -> Tensor {
    let md = mask.as_slice();
    let mut out = vec![0.0f32; size * size];
    for y in 0..size {
        for x in 0..size {
            let mut acc = 0.0;
            let mut count = 0.0;
            for dy in -2i32..=2 {
                for dx in -2i32..=2 {
                    let (yy, xx) = (y as i32 + dy, x as i32 + dx);
                    if yy >= 0 && yy < size as i32 && xx >= 0 && xx < size as i32 {
                        acc += md[(yy as usize) * size + xx as usize];
                        count += 1.0;
                    }
                }
            }
            out[y * size + x] = if acc / count > 0.45 { 1.0 } else { 0.0 };
        }
    }
    Tensor::from_vec(out, &[1, size, size])
}

fn surrogate_dataset(n: usize, size: usize, seed: u64) -> Vec<(Tensor, Tensor)> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| {
            let mut mask = Tensor::zeros(&[1, size, size]);
            for _ in 0..6 {
                let y0 = rng.gen_range(2..size - 10);
                let x0 = rng.gen_range(2..size - 10);
                let h = rng.gen_range(4..10);
                let w = rng.gen_range(4..10);
                for y in y0..(y0 + h).min(size) {
                    for x in x0..(x0 + w).min(size) {
                        mask.set(&[0, y, x], 1.0);
                    }
                }
            }
            let target = blur_threshold(&mask, size);
            (mask, target)
        })
        .collect()
}

#[test]
fn doinn_learns_blur_threshold_surrogate() {
    let size = 32;
    let data = surrogate_dataset(12, size, 5);
    let mut rng = seeded_rng(0);
    let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
    let samples: Vec<_> = data
        .iter()
        .map(|(m, t)| (m.clone(), to_tanh_target(t)))
        .collect();
    train_model(
        &model,
        &samples,
        &TrainConfig {
            epochs: 30,
            lr_step: 6,
            batch_size: 4,
            augment: true,
            ..TrainConfig::default()
        },
    );
    let test = surrogate_dataset(4, size, 77);
    let metrics = evaluate_model(&model, &test);
    assert!(
        metrics.miou > 0.72,
        "DOINN should fit a blur-threshold surrogate, got {metrics}"
    );
}

#[test]
fn full_config_beats_gp_only_on_surrogate() {
    // compressed Table 3: same budget, full DOINN vs the GP-only ablation
    let size = 32;
    let data = surrogate_dataset(12, size, 9);
    let samples: Vec<_> = data
        .iter()
        .map(|(m, t)| (m.clone(), to_tanh_target(t)))
        .collect();
    let test = surrogate_dataset(4, size, 78);
    let run = |cfg: DoinnConfig| {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(cfg, &mut rng);
        let report = train_model(
            &model,
            &samples,
            &TrainConfig {
                epochs: 20,
                lr_step: 6,
                batch_size: 4,
                augment: true,
                ..TrainConfig::default()
            },
        );
        (
            evaluate_model(&model, &test),
            *report.epoch_losses.last().unwrap(),
        )
    };
    let (gp_only, gp_loss) = run(DoinnConfig::tiny().ablation_gp());
    let (full, full_loss) = run(DoinnConfig::tiny());
    // the full model must fit the task better (training loss) and not be
    // meaningfully worse on held-out tiles
    assert!(
        full_loss < gp_loss,
        "full DOINN loss {full_loss} should beat GP-only {gp_loss}"
    );
    assert!(
        full.miou > gp_only.miou - 0.02,
        "full DOINN {} should not trail GP-only {}",
        full.miou,
        gp_only.miou
    );
}

#[test]
fn seg_metrics_consistent_with_geometry_iou() {
    // when the background class is ignored, foreground IoU must match the
    // geometry crate's binary_iou
    let a = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0];
    let b = vec![1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0];
    let g_iou = binary_iou(&a, &b);
    // recompute fg IoU from the two-class means: miou = (fg + bg)/2
    let m = seg_metrics(&a, &b);
    let inter_bg = 3.0; // positions 4,5,7
    let union_bg = 5.0; // positions 1,2,4,5,7
    let bg_iou = inter_bg / union_bg;
    let fg_from_miou = 2.0 * m.miou - bg_iou;
    assert!(
        (fg_from_miou - g_iou).abs() < 1e-5,
        "fg IoU {fg_from_miou} vs geometry {g_iou}"
    );
}

#[test]
fn dihedral_augmentation_does_not_break_training() {
    // augmented training must remain finite and reduce loss
    let size = 32;
    let data = surrogate_dataset(6, size, 13);
    let samples: Vec<_> = data
        .iter()
        .map(|(m, t)| (m.clone(), to_tanh_target(t)))
        .collect();
    let mut rng = seeded_rng(2);
    let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
    let report = train_model(
        &model,
        &samples,
        &TrainConfig {
            epochs: 4,
            batch_size: 3,
            augment: true,
            ..TrainConfig::default()
        },
    );
    assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    assert!(report.epoch_losses.last().unwrap() < &report.epoch_losses[0]);
}
