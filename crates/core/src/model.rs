//! The DOINN architecture (§3.1, appendix Tables 5–7).
//!
//! Three paths:
//!
//! - **Global Perception (GP)** — 8× average pool, then the optimized
//!   [`FourierUnit`] (single FFT → channel lift → per-frequency mixing →
//!   iFFT → LeakyReLU 0.1), optionally with a spatial 1×1 bypass (Table 3's
//!   "ByPass" row).
//! - **Local Perception (LP)** — three stride-2 4×4 convs interleaved with
//!   VGG blocks, producing skip features at 1/2, 1/4 and 1/8 resolution.
//! - **Image Reconstruction (IR)** — three stride-2 transposed convs with
//!   U-Net-style concats from the LP path, followed by four single-stride
//!   refinement convs and a Tanh head.
//!
//! Ablation switches in [`DoinnConfig`] reproduce the four rows of Table 3.

use crate::fourier::{fourier_unit, fourier_unit_infer};
use litho_nn::{
    infer, ops, BatchNorm2d, Conv2d, ConvTranspose2d, Graph, InferCtx, Module, Param, Var,
};
use litho_tensor::init;
use litho_tensor::Tensor;
use rand::Rng;

/// Configuration of a [`Doinn`] model.
///
/// The paper's full-scale network (2048² inputs) is `DoinnConfig::paper()`;
/// the scaled defaults used by the CPU experiments keep the same topology at
/// smaller channel counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoinnConfig {
    /// GP path channel count `C` (paper: 16).
    pub gp_channels: usize,
    /// LP path channels after each stride-2 stage (paper: [4, 8, 16]).
    pub lp_channels: [usize; 3],
    /// Frequency modes kept per axis corner (`k`; `2k×2k` modes total;
    /// paper keeps 50×50 of a 256-pixel pooled grid ⇒ `k = 25`).
    pub fourier_modes: usize,
    /// GP average-pooling factor (paper: 8).
    pub pool: usize,
    /// Enable the convolutional local-perception path (Table 3 row 3).
    pub use_lp: bool,
    /// Enable the four refinement convs in IR (Table 3 row 2).
    pub use_refine: bool,
    /// Enable the spatial bypass inside the Fourier unit (Table 3 row 4).
    pub bypass: bool,
}

impl DoinnConfig {
    /// Paper-scale configuration (for 2048² tiles).
    pub fn paper() -> Self {
        Self {
            gp_channels: 16,
            lp_channels: [4, 8, 16],
            fourier_modes: 25,
            pool: 8,
            use_lp: true,
            use_refine: true,
            bypass: true,
        }
    }

    /// Scaled configuration for the CPU experiments (128²–256² tiles).
    pub fn scaled() -> Self {
        Self {
            gp_channels: 16,
            lp_channels: [4, 8, 16],
            fourier_modes: 4,
            pool: 8,
            use_lp: true,
            use_refine: true,
            bypass: true,
        }
    }

    /// Tiny configuration for unit tests.
    ///
    /// Note: `pool` must stay 8 — the GP output resolution has to match the
    /// LP path's three stride-2 stages for the IR concat.
    pub fn tiny() -> Self {
        Self {
            gp_channels: 4,
            lp_channels: [2, 4, 4],
            fourier_modes: 2,
            pool: 8,
            use_lp: true,
            use_refine: true,
            bypass: true,
        }
    }

    /// Table 3 row 1: Fourier unit only.
    #[must_use]
    pub fn ablation_gp(mut self) -> Self {
        self.use_lp = false;
        self.use_refine = false;
        self.bypass = false;
        self
    }

    /// Table 3 row 2: GP + refinement convs.
    #[must_use]
    pub fn ablation_gp_ir(mut self) -> Self {
        self.use_lp = false;
        self.use_refine = true;
        self.bypass = false;
        self
    }

    /// Table 3 row 3: GP + IR + LP (no bypass).
    #[must_use]
    pub fn ablation_gp_ir_lp(mut self) -> Self {
        self.use_lp = true;
        self.use_refine = true;
        self.bypass = false;
        self
    }
}

/// The optimized Fourier Unit as a layer (weights + optional bypass conv).
#[derive(Debug)]
pub struct FourierUnit {
    wp_re: Param,
    wp_im: Param,
    wr_re: Param,
    wr_im: Param,
    modes: usize,
    bypass: Option<Conv2d>,
}

impl FourierUnit {
    /// Creates a unit lifting 1 channel to `channels` with `modes` kept
    /// frequencies per axis corner.
    pub fn new(channels: usize, modes: usize, bypass: bool, rng: &mut impl Rng) -> Self {
        let m = 2 * modes;
        // FNO-style init: scale 1/(ci·co)
        let lift_scale = 1.0 / channels as f32;
        let mix_scale = 1.0 / (channels * channels) as f32;
        Self {
            wp_re: Param::new(init::uniform(&[channels], 0.0, lift_scale, rng), "fu.wp_re"),
            wp_im: Param::new(init::uniform(&[channels], 0.0, lift_scale, rng), "fu.wp_im"),
            wr_re: Param::new(
                init::uniform(&[channels, channels, m, m], 0.0, mix_scale, rng),
                "fu.wr_re",
            ),
            wr_im: Param::new(
                init::uniform(&[channels, channels, m, m], 0.0, mix_scale, rng),
                "fu.wr_im",
            ),
            modes,
            bypass: bypass.then(|| Conv2d::new(1, channels, 1, 1, 0, true, rng)),
        }
    }

    /// Number of kept modes per axis corner.
    pub fn modes(&self) -> usize {
        self.modes
    }
}

impl Module for FourierUnit {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let wp_re = g.param(&self.wp_re);
        let wp_im = g.param(&self.wp_im);
        let wr_re = g.param(&self.wr_re);
        let wr_im = g.param(&self.wr_im);
        let spectral = fourier_unit(g, x, wp_re, wp_im, wr_re, wr_im, self.modes);
        let pre = match &self.bypass {
            Some(conv) => {
                let b = conv.forward(g, x);
                ops::add(g, spectral, b)
            }
            None => spectral,
        };
        ops::leaky_relu(g, pre, 0.1)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let mut spectral = {
            let wp_re = self.wp_re.value_ref();
            let wp_im = self.wp_im.value_ref();
            let wr_re = self.wr_re.value_ref();
            let wr_im = self.wr_im.value_ref();
            fourier_unit_infer(ctx, &x, &wp_re, &wp_im, &wr_re, &wr_im, self.modes)
        };
        if let Some(conv) = &self.bypass {
            let b = conv.infer_ref(ctx, &x);
            spectral.add_assign(&b); // same elementwise order as ops::add
            ctx.recycle(b);
        }
        ctx.recycle(x);
        infer::leaky_relu_inplace(&mut spectral, 0.1);
        spectral
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![
            self.wp_re.clone(),
            self.wp_im.clone(),
            self.wr_re.clone(),
            self.wr_im.clone(),
        ];
        if let Some(c) = &self.bypass {
            p.extend(c.params());
        }
        p
    }
}

/// Two 3×3 convs with batch norm and LeakyReLU(0.2) — the paper's "vgg"
/// block (appendix Tables 6–7).
#[derive(Debug)]
pub struct VggBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
}

impl VggBlock {
    /// Creates a same-resolution block mapping `in_c` to `out_c` channels.
    pub fn new(in_c: usize, out_c: usize, rng: &mut impl Rng) -> Self {
        Self {
            conv1: Conv2d::new(in_c, out_c, 3, 1, 1, true, rng),
            bn1: BatchNorm2d::new(out_c),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, true, rng),
            bn2: BatchNorm2d::new(out_c),
        }
    }
}

impl Module for VggBlock {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let mut v = self.conv1.forward(g, x);
        v = self.bn1.forward(g, v);
        v = ops::leaky_relu(g, v, 0.2);
        v = self.conv2.forward(g, v);
        v = self.bn2.forward(g, v);
        ops::leaky_relu(g, v, 0.2)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let mut v = self.conv1.infer(ctx, x);
        v = self.bn1.infer(ctx, v);
        infer::leaky_relu_inplace(&mut v, 0.2);
        v = self.conv2.infer(ctx, v);
        v = self.bn2.infer(ctx, v);
        infer::leaky_relu_inplace(&mut v, 0.2);
        v
    }

    fn params(&self) -> Vec<Param> {
        [
            &self.conv1 as &dyn Module,
            &self.bn1,
            &self.conv2,
            &self.bn2,
        ]
        .iter()
        .flat_map(|m| m.params())
        .collect()
    }

    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
    }

    fn is_training(&self) -> bool {
        self.bn1.is_training()
    }
}

/// Local-perception path: three stride-2 stages with VGG blocks, returning
/// the three skip features (1/2, 1/4, 1/8 resolution).
#[derive(Debug)]
struct LpPath {
    conv1: Conv2d,
    vgg1: VggBlock,
    conv2: Conv2d,
    vgg2: VggBlock,
    conv3: Conv2d,
    vgg3: VggBlock,
}

impl LpPath {
    fn new(c: [usize; 3], rng: &mut impl Rng) -> Self {
        Self {
            conv1: Conv2d::new(1, c[0], 4, 2, 1, true, rng),
            vgg1: VggBlock::new(c[0], c[0], rng),
            conv2: Conv2d::new(c[0], c[1], 4, 2, 1, true, rng),
            vgg2: VggBlock::new(c[1], c[1], rng),
            conv3: Conv2d::new(c[1], c[2], 4, 2, 1, true, rng),
            vgg3: VggBlock::new(c[2], c[2], rng),
        }
    }

    fn forward(&self, g: &mut Graph, x: Var) -> (Var, Var, Var) {
        let d1 = self.conv1.forward(g, x);
        let f1 = self.vgg1.forward(g, d1);
        let d2 = self.conv2.forward(g, f1);
        let f2 = self.vgg2.forward(g, d2);
        let d3 = self.conv3.forward(g, f2);
        let f3 = self.vgg3.forward(g, d3);
        (f1, f2, f3)
    }

    /// Tape-free skip features; `x` is borrowed (the caller also feeds it to
    /// the GP path).
    fn infer(&self, ctx: &mut InferCtx, x: &Tensor) -> (Tensor, Tensor, Tensor) {
        let d1 = self.conv1.infer_ref(ctx, x);
        let f1 = self.vgg1.infer(ctx, d1);
        let d2 = self.conv2.infer_ref(ctx, &f1);
        let f2 = self.vgg2.infer(ctx, d2);
        let d3 = self.conv3.infer_ref(ctx, &f2);
        let f3 = self.vgg3.infer(ctx, d3);
        (f1, f2, f3)
    }

    fn params(&self) -> Vec<Param> {
        let mods: [&dyn Module; 6] = [
            &self.conv1,
            &self.vgg1,
            &self.conv2,
            &self.vgg2,
            &self.conv3,
            &self.vgg3,
        ];
        mods.iter().flat_map(|m| m.params()).collect()
    }

    fn set_training(&self, training: bool) {
        self.vgg1.set_training(training);
        self.vgg2.set_training(training);
        self.vgg3.set_training(training);
    }

    fn is_training(&self) -> bool {
        self.vgg1.is_training()
    }
}

/// The dual-band optics-inspired neural network.
#[derive(Debug)]
pub struct Doinn {
    config: DoinnConfig,
    fu: FourierUnit,
    lp: Option<LpPath>,
    dconv1: ConvTranspose2d,
    vgg4: Option<VggBlock>,
    dconv2: ConvTranspose2d,
    vgg5: Option<VggBlock>,
    dconv3: ConvTranspose2d,
    vgg6: Option<VggBlock>,
    refine: Option<(Conv2d, Conv2d, Conv2d, Conv2d)>,
    head: Option<Conv2d>,
}

/// IR upsampling channel plan (paper: 16 → 8 → 4).
const U1: usize = 16;
const U2: usize = 8;
const U3: usize = 4;

impl Doinn {
    /// Builds a DOINN with the given configuration.
    pub fn new(config: DoinnConfig, rng: &mut impl Rng) -> Self {
        let c = config.gp_channels;
        let [l1, l2, l3] = config.lp_channels;
        let lp = config.use_lp.then(|| LpPath::new(config.lp_channels, rng));
        let in1 = c + if config.use_lp { l3 } else { 0 };
        let dconv1 = ConvTranspose2d::new(in1, U1, 4, 2, 1, true, rng);
        let vgg4 = config.use_lp.then(|| VggBlock::new(U1, U1, rng));
        let in2 = U1 + if config.use_lp { l2 } else { 0 };
        let dconv2 = ConvTranspose2d::new(in2, U2, 4, 2, 1, true, rng);
        let vgg5 = config.use_lp.then(|| VggBlock::new(U2, U2, rng));
        let in3 = U2 + if config.use_lp { l1 } else { 0 };
        let dconv3 = ConvTranspose2d::new(in3, U3, 4, 2, 1, true, rng);
        let vgg6 = config.use_lp.then(|| VggBlock::new(U3, U3, rng));
        let (refine, head) = if config.use_refine {
            (
                Some((
                    Conv2d::new(U3, 32, 3, 1, 1, true, rng),
                    Conv2d::new(32, 16, 3, 1, 1, true, rng),
                    Conv2d::new(16, 16, 3, 1, 1, true, rng),
                    Conv2d::new(16, 1, 3, 1, 1, true, rng),
                )),
                None,
            )
        } else {
            (None, Some(Conv2d::new(U3, 1, 3, 1, 1, true, rng)))
        };
        Self {
            config,
            fu: FourierUnit::new(c, config.fourier_modes, config.bypass, rng),
            lp,
            dconv1,
            vgg4,
            dconv2,
            vgg5,
            dconv3,
            vgg6,
            refine,
            head,
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> DoinnConfig {
        self.config
    }

    /// GP-path forward on an already-pooled input (used directly by the
    /// large-tile scheme, which tiles the pooled mask itself).
    pub fn gp_on_pooled(&self, g: &mut Graph, pooled: Var) -> Var {
        self.fu.forward(g, pooled)
    }

    /// Tape-free [`Doinn::gp_on_pooled`] — bit-identical to the graph path.
    pub fn gp_on_pooled_infer(&self, ctx: &mut InferCtx, pooled: Tensor) -> Tensor {
        self.fu.infer(ctx, pooled)
    }

    /// LP-path skip features on a full-resolution input (`None` when the LP
    /// path is disabled). Used by the large-tile scheme, which runs LP on the
    /// whole tile while stitching GP windows.
    pub fn lp_features(&self, g: &mut Graph, x: Var) -> Option<(Var, Var, Var)> {
        self.lp.as_ref().map(|lp| lp.forward(g, x))
    }

    /// Tape-free [`Doinn::lp_features`] — bit-identical to the graph path.
    pub fn lp_features_infer(
        &self,
        ctx: &mut InferCtx,
        x: &Tensor,
    ) -> Option<(Tensor, Tensor, Tensor)> {
        self.lp.as_ref().map(|lp| lp.infer(ctx, x))
    }

    /// Forward pass exposing the GP feature map, LP skip features and output
    /// (used for Figure 7 feature-map visualisation and the large-tile
    /// scheme).
    pub fn forward_with_features(
        &self,
        g: &mut Graph,
        x: Var,
    ) -> (Var, Option<(Var, Var, Var)>, Var) {
        let pooled = ops::avg_pool2d(g, x, self.config.pool);
        let gp = self.fu.forward(g, pooled);
        let lp_feats = self.lp.as_ref().map(|lp| lp.forward(g, x));
        let out = self.reconstruct(g, gp, lp_feats);
        (gp, lp_feats, out)
    }

    /// IR path: upsample (with optional skips) + refinement + Tanh.
    pub(crate) fn reconstruct(
        &self,
        g: &mut Graph,
        gp: Var,
        lp_feats: Option<(Var, Var, Var)>,
    ) -> Var {
        let j1 = match &lp_feats {
            Some((_, _, f3)) => ops::concat(g, &[gp, *f3]),
            None => gp,
        };
        let mut v = self.dconv1.forward(g, j1);
        if let Some(vgg) = &self.vgg4 {
            v = vgg.forward(g, v);
        }
        let j2 = match &lp_feats {
            Some((_, f2, _)) => ops::concat(g, &[v, *f2]),
            None => v,
        };
        v = self.dconv2.forward(g, j2);
        if let Some(vgg) = &self.vgg5 {
            v = vgg.forward(g, v);
        }
        let j3 = match &lp_feats {
            Some((f1, _, _)) => ops::concat(g, &[v, *f1]),
            None => v,
        };
        v = self.dconv3.forward(g, j3);
        if let Some(vgg) = &self.vgg6 {
            v = vgg.forward(g, v);
        }
        if let Some((r1, r2, r3, r4)) = &self.refine {
            v = r1.forward(g, v);
            v = ops::relu(g, v);
            v = r2.forward(g, v);
            v = ops::relu(g, v);
            v = r3.forward(g, v);
            v = ops::relu(g, v);
            v = r4.forward(g, v);
        } else if let Some(head) = &self.head {
            v = head.forward(g, v);
        }
        ops::tanh(g, v)
    }

    /// Tape-free IR path, mirroring [`Doinn::reconstruct`] op for op. Skip
    /// features are consumed (their buffers return to the `ctx` pool after
    /// their join).
    pub(crate) fn reconstruct_infer(
        &self,
        ctx: &mut InferCtx,
        gp: Tensor,
        lp_feats: Option<(Tensor, Tensor, Tensor)>,
    ) -> Tensor {
        let (f1, f2, f3) = match lp_feats {
            Some((a, b, c)) => (Some(a), Some(b), Some(c)),
            None => (None, None, None),
        };
        let j1 = match &f3 {
            Some(f3) => {
                let j = infer::concat(ctx, &[&gp, f3]);
                ctx.recycle(gp);
                j
            }
            None => gp,
        };
        if let Some(f3) = f3 {
            ctx.recycle(f3);
        }
        let mut v = self.dconv1.infer(ctx, j1);
        if let Some(vgg) = &self.vgg4 {
            v = vgg.infer(ctx, v);
        }
        if let Some(f2) = &f2 {
            let j = infer::concat(ctx, &[&v, f2]);
            ctx.recycle(v);
            v = j;
        }
        if let Some(f2) = f2 {
            ctx.recycle(f2);
        }
        v = self.dconv2.infer(ctx, v);
        if let Some(vgg) = &self.vgg5 {
            v = vgg.infer(ctx, v);
        }
        if let Some(f1) = &f1 {
            let j = infer::concat(ctx, &[&v, f1]);
            ctx.recycle(v);
            v = j;
        }
        if let Some(f1) = f1 {
            ctx.recycle(f1);
        }
        v = self.dconv3.infer(ctx, v);
        if let Some(vgg) = &self.vgg6 {
            v = vgg.infer(ctx, v);
        }
        if let Some((r1, r2, r3, r4)) = &self.refine {
            v = r1.infer(ctx, v);
            infer::relu_inplace(&mut v);
            v = r2.infer(ctx, v);
            infer::relu_inplace(&mut v);
            v = r3.infer(ctx, v);
            infer::relu_inplace(&mut v);
            v = r4.infer(ctx, v);
        } else if let Some(head) = &self.head {
            v = head.infer(ctx, v);
        }
        infer::tanh_inplace(&mut v);
        v
    }
}

impl Module for Doinn {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let (_, _, out) = self.forward_with_features(g, x);
        out
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        // same op order as forward_with_features: pool → GP → LP → IR
        let pooled = ops::avg_pool2d_infer(ctx, &x, self.config.pool);
        let gp = self.fu.infer(ctx, pooled);
        let lp_feats = self.lp.as_ref().map(|lp| lp.infer(ctx, &x));
        ctx.recycle(x);
        self.reconstruct_infer(ctx, gp, lp_feats)
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.fu.params();
        if let Some(lp) = &self.lp {
            p.extend(lp.params());
        }
        p.extend(self.dconv1.params());
        if let Some(v) = &self.vgg4 {
            p.extend(v.params());
        }
        p.extend(self.dconv2.params());
        if let Some(v) = &self.vgg5 {
            p.extend(v.params());
        }
        p.extend(self.dconv3.params());
        if let Some(v) = &self.vgg6 {
            p.extend(v.params());
        }
        if let Some((r1, r2, r3, r4)) = &self.refine {
            p.extend(r1.params());
            p.extend(r2.params());
            p.extend(r3.params());
            p.extend(r4.params());
        }
        if let Some(h) = &self.head {
            p.extend(h.params());
        }
        p
    }

    fn set_training(&self, training: bool) {
        if let Some(lp) = &self.lp {
            lp.set_training(training);
        }
        for v in [&self.vgg4, &self.vgg5, &self.vgg6].into_iter().flatten() {
            v.set_training(training);
        }
    }

    fn is_training(&self) -> bool {
        self.lp.as_ref().is_some_and(|lp| lp.is_training())
            || [&self.vgg4, &self.vgg5, &self.vgg6]
                .into_iter()
                .flatten()
                .any(|v| v.is_training())
    }
}

/// Runs a tape-free inference forward pass ([`Module::infer`]) and returns
/// the raw Tanh output.
///
/// The input is taken **by value** — no defensive copy is made on either the
/// tape-free path or the graph fallback (its buffer is recycled into the
/// per-call context instead). Callers that still need the input afterwards
/// clone at the call site, where the cost is visible.
///
/// For repeated predictions, hold an [`InferCtx`] and call
/// [`predict_with_ctx`] (or [`Module::infer`] directly) so activation
/// buffers recycle across calls instead of being reallocated.
pub fn predict<M: Module + ?Sized>(model: &M, input: Tensor) -> Tensor {
    model.infer(&mut InferCtx::new(), input)
}

/// [`predict`] reusing a caller-held [`InferCtx`] (buffer recycling across
/// calls; pass the prediction back to [`InferCtx::recycle`] once consumed to
/// make the loop allocation-free).
pub fn predict_with_ctx<M: Module + ?Sized>(
    model: &M,
    ctx: &mut InferCtx,
    input: Tensor,
) -> Tensor {
    model.infer(ctx, input)
}

/// Runs tape-free inference over a batch of inputs, one forward pass per
/// sample, fanned out across the process-wide [`litho_parallel::global`]
/// pool (`LITHO_THREADS` to configure). Each worker thread owns one
/// [`InferCtx`], so activation buffers recycle across that worker's samples
/// and peak memory is one live activation set per thread.
///
/// Outputs are returned in input order and are bit-identical to calling
/// [`predict`] per sample, for any thread count — **provided the model is in
/// eval mode**. In training mode batch-norm layers update running statistics
/// per forward pass, and the update order across workers is scheduling-
/// dependent; call [`Module::set_training`]`(false)` first.
pub fn predict_batch<M: Module + Sync + ?Sized>(model: &M, inputs: &[Tensor]) -> Vec<Tensor> {
    predict_batch_with_pool(model, inputs, litho_parallel::global())
}

/// [`predict_batch`] on an explicit [`litho_parallel::Pool`].
pub fn predict_batch_with_pool<M: Module + Sync + ?Sized>(
    model: &M,
    inputs: &[Tensor],
    pool: &litho_parallel::Pool,
) -> Vec<Tensor> {
    infer::par_infer_map(pool, inputs.len(), |ctx, i| {
        model.infer(ctx, inputs[i].clone())
    })
}

/// Thresholds a Tanh-activated prediction at 0 into a binary contour image.
pub fn prediction_to_contour(pred: &Tensor) -> Vec<f32> {
    pred.as_slice()
        .iter()
        .map(|&v| if v > 0.0 { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::init::seeded_rng;

    #[test]
    fn full_model_shape_roundtrip() {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
        let y = model.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 32, 32]);
        // tanh range
        assert!(g.value(y).as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn any_sized_input_supported() {
        // the paper's claim: the architecture itself accepts any tile size
        let mut rng = seeded_rng(2);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        for s in [32usize, 64] {
            let mut g = Graph::new();
            let x = g.input(Tensor::zeros(&[1, 1, s, s]));
            let y = model.forward(&mut g, x);
            assert_eq!(g.value(y).shape(), &[1, 1, s, s]);
        }
    }

    #[test]
    fn ablation_variants_build_and_run() {
        let mut rng = seeded_rng(3);
        let configs = [
            DoinnConfig::tiny().ablation_gp(),
            DoinnConfig::tiny().ablation_gp_ir(),
            DoinnConfig::tiny().ablation_gp_ir_lp(),
            DoinnConfig::tiny(),
        ];
        let mut last_params = 0usize;
        for cfg in configs {
            let m = Doinn::new(cfg, &mut rng);
            let mut g = Graph::new();
            let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
            let y = m.forward(&mut g, x);
            assert_eq!(g.value(y).shape(), &[1, 1, 32, 32]);
            // each ablation stage adds parameters
            let n = m.param_count();
            assert!(n >= last_params, "param counts should be non-decreasing");
            last_params = n;
        }
    }

    #[test]
    fn feature_maps_have_documented_shapes() {
        let mut rng = seeded_rng(4);
        let cfg = DoinnConfig::tiny();
        let model = Doinn::new(cfg, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
        let (gp, lp, out) = model.forward_with_features(&mut g, x);
        assert_eq!(
            g.value(gp).shape(),
            &[1, cfg.gp_channels, 32 / cfg.pool, 32 / cfg.pool]
        );
        let (f1, f2, f3) = lp.expect("LP enabled");
        assert_eq!(g.value(f1).dim(2), 16); // 1/2 resolution
        assert_eq!(g.value(f2).dim(2), 8); // 1/4
        assert_eq!(g.value(f3).dim(2), 4); // 1/8 — matches the pooled GP grid
        let _ = out;
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        // sanity: a few Adam steps on a fixed (mask, target) pair decrease MSE
        use litho_nn::Adam;
        let mut rng = seeded_rng(5);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let input = litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng);
        let target = input.map(|v| if v > 0.0 { 1.0 } else { -1.0 });
        let mut opt = Adam::new(model.params(), 2e-3);
        let mut losses = Vec::new();
        for _ in 0..8 {
            opt.zero_grad();
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = model.forward(&mut g, x);
            let loss = ops::mse_loss(&mut g, y, &target);
            losses.push(g.value(loss).as_slice()[0]);
            g.backward(loss);
            opt.step();
        }
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn predict_and_contour_helpers() {
        let mut rng = seeded_rng(6);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let input = Tensor::zeros(&[1, 1, 32, 32]);
        let pred = predict(&model, input);
        assert_eq!(pred.shape(), &[1, 1, 32, 32]);
        let contour = prediction_to_contour(&pred);
        assert!(contour.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn predict_batch_matches_serial_predict_for_any_pool_size() {
        let mut rng = seeded_rng(8);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false); // running stats must not move under fan-out
        let inputs: Vec<Tensor> = (0..5)
            .map(|_| litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng))
            .collect();
        let want: Vec<Tensor> = inputs.iter().map(|x| predict(&model, x.clone())).collect();
        for threads in [1usize, 2, 4] {
            let got = predict_batch_with_pool(&model, &inputs, &litho_parallel::Pool::new(threads));
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in want.iter().zip(&got).enumerate() {
                assert_eq!(
                    a.as_slice(),
                    b.as_slice(),
                    "sample {i} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn paper_config_param_count_matches_scale() {
        // paper reports 1.3M parameters for the full model; the dominant
        // term is W_R: 16·16·50·50·2 = 1.28M
        let mut rng = seeded_rng(7);
        let model = Doinn::new(DoinnConfig::paper(), &mut rng);
        let n = model.param_count();
        assert!(
            (1_200_000..1_600_000).contains(&n),
            "paper-config params = {n}, expected ≈1.3M"
        );
    }
}
