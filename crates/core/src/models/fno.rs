//! Baseline FNO lithography model (Figure 3a, eqs. 8–10).
//!
//! Stacked Fourier Units: lift `P`, `T` spectral layers each performing a
//! full per-channel FFT → truncated mixing → iFFT plus a linear bypass
//! `W_L`, then projection `Q`. This is the architecture the paper argues is
//! too expensive for lithography (multiple FFTs per layer) — kept here both
//! as a quality baseline and as the runtime comparison target for the
//! optimized Fourier Unit micro-bench.

use crate::fourier::{spectral_conv2d, spectral_conv2d_infer};
use litho_nn::{infer, ops, Conv2d, ConvTranspose2d, Graph, InferCtx, Module, Param, Var};
use litho_tensor::{init, Tensor};
use rand::Rng;

/// One baseline Fourier layer: `σ(W_L·v + F⁻¹(R·F(v)_trunc))` (eq. 8).
#[derive(Debug)]
pub struct FnoLayer {
    w_re: Param,
    w_im: Param,
    bypass: Conv2d,
    modes: usize,
}

impl FnoLayer {
    /// Creates a `channels → channels` Fourier layer keeping `modes`
    /// frequencies per axis corner.
    pub fn new(channels: usize, modes: usize, rng: &mut impl Rng) -> Self {
        let m = 2 * modes;
        let scale = 1.0 / (channels * channels) as f32;
        Self {
            w_re: Param::new(
                init::uniform(&[channels, channels, m, m], 0.0, scale, rng),
                "fno.w_re",
            ),
            w_im: Param::new(
                init::uniform(&[channels, channels, m, m], 0.0, scale, rng),
                "fno.w_im",
            ),
            bypass: Conv2d::new(channels, channels, 1, 1, 0, true, rng),
            modes,
        }
    }
}

impl Module for FnoLayer {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w_re = g.param(&self.w_re);
        let w_im = g.param(&self.w_im);
        let spectral = spectral_conv2d(g, x, w_re, w_im, self.modes);
        let lin = self.bypass.forward(g, x);
        let s = ops::add(g, spectral, lin);
        ops::leaky_relu(g, s, 0.1)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let mut spectral = {
            let w_re = self.w_re.value_ref();
            let w_im = self.w_im.value_ref();
            spectral_conv2d_infer(ctx, &x, &w_re, &w_im, self.modes)
        };
        let lin = self.bypass.infer_ref(ctx, &x);
        ctx.recycle(x);
        spectral.add_assign(&lin); // same elementwise order as ops::add
        ctx.recycle(lin);
        infer::leaky_relu_inplace(&mut spectral, 0.1);
        spectral
    }

    fn params(&self) -> Vec<Param> {
        let mut p = vec![self.w_re.clone(), self.w_im.clone()];
        p.extend(self.bypass.params());
        p
    }
}

/// The full baseline FNO model: pool → lift `P` → stacked [`FnoLayer`]s →
/// project `Q` → transposed-conv upsampling → Tanh.
#[derive(Debug)]
pub struct Fno {
    pool: usize,
    lift: Conv2d,
    layers: Vec<FnoLayer>,
    project: Conv2d,
    up1: ConvTranspose2d,
    up2: ConvTranspose2d,
    up3: ConvTranspose2d,
    out: Conv2d,
}

impl Fno {
    /// Builds a baseline FNO with `depth` stacked Fourier layers of width
    /// `channels`, keeping `modes` frequencies per corner, at an 8× pooled
    /// working resolution (matching the DOINN GP path for fair comparison).
    pub fn new(channels: usize, depth: usize, modes: usize, rng: &mut impl Rng) -> Self {
        assert!(depth >= 1, "FNO needs at least one Fourier layer");
        Self {
            pool: 8,
            lift: Conv2d::new(1, channels, 1, 1, 0, true, rng),
            layers: (0..depth)
                .map(|_| FnoLayer::new(channels, modes, rng))
                .collect(),
            project: Conv2d::new(channels, 16, 1, 1, 0, true, rng),
            up1: ConvTranspose2d::new(16, 8, 4, 2, 1, true, rng),
            up2: ConvTranspose2d::new(8, 4, 4, 2, 1, true, rng),
            up3: ConvTranspose2d::new(4, 4, 4, 2, 1, true, rng),
            out: Conv2d::new(4, 1, 3, 1, 1, true, rng),
        }
    }

    /// Number of stacked Fourier layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Fno {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let mut v = ops::avg_pool2d(g, x, self.pool);
        v = self.lift.forward(g, v);
        for layer in &self.layers {
            v = layer.forward(g, v);
        }
        v = self.project.forward(g, v);
        v = self.up1.forward(g, v);
        v = ops::leaky_relu(g, v, 0.1);
        v = self.up2.forward(g, v);
        v = ops::leaky_relu(g, v, 0.1);
        v = self.up3.forward(g, v);
        v = ops::leaky_relu(g, v, 0.1);
        v = self.out.forward(g, v);
        ops::tanh(g, v)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        let mut v = ops::avg_pool2d_infer(ctx, &x, self.pool);
        ctx.recycle(x);
        v = self.lift.infer(ctx, v);
        for layer in &self.layers {
            v = layer.infer(ctx, v);
        }
        v = self.project.infer(ctx, v);
        v = self.up1.infer(ctx, v);
        infer::leaky_relu_inplace(&mut v, 0.1);
        v = self.up2.infer(ctx, v);
        infer::leaky_relu_inplace(&mut v, 0.1);
        v = self.up3.infer(ctx, v);
        infer::leaky_relu_inplace(&mut v, 0.1);
        v = self.out.infer(ctx, v);
        infer::tanh_inplace(&mut v);
        v
    }

    fn params(&self) -> Vec<Param> {
        let mut p = self.lift.params();
        for l in &self.layers {
            p.extend(l.params());
        }
        p.extend(self.project.params());
        p.extend(self.up1.params());
        p.extend(self.up2.params());
        p.extend(self.up3.params());
        p.extend(self.out.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::init::seeded_rng;
    use litho_tensor::Tensor;

    #[test]
    fn shape_roundtrip() {
        let mut rng = seeded_rng(1);
        let net = Fno::new(8, 2, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 32, 32]);
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn deeper_fno_has_more_params() {
        let mut rng = seeded_rng(2);
        let d1 = Fno::new(8, 1, 2, &mut rng).param_count();
        let d4 = Fno::new(8, 4, 2, &mut rng).param_count();
        assert!(d4 > 2 * d1);
    }

    #[test]
    fn trains_on_tiny_problem() {
        use litho_nn::Adam;
        let mut rng = seeded_rng(3);
        let net = Fno::new(4, 1, 2, &mut rng);
        let input = litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng);
        let target = input.map(|v| if v > 0.0 { 1.0 } else { -1.0 });
        let mut opt = Adam::new(net.params(), 2e-3);
        let mut first = 0.0;
        let mut last = 0.0;
        for i in 0..6 {
            opt.zero_grad();
            let mut g = Graph::new();
            let x = g.input(input.clone());
            let y = net.forward(&mut g, x);
            let loss = ops::mse_loss(&mut g, y, &target);
            if i == 0 {
                first = g.value(loss).as_slice()[0];
            }
            last = g.value(loss).as_slice()[0];
            g.backward(loss);
            opt.step();
        }
        assert!(last < first, "{first} -> {last}");
    }
}
