//! Baseline models the paper compares DOINN against (Table 2, Figures 6/8).

mod damo;
mod fno;
mod unet;

pub use damo::DamoDls;
pub use fno::{Fno, FnoLayer};
pub use unet::Unet;
