//! DAMO-DLS-like baseline [10]: a nested-UNet (UNet++-style) deep
//! lithography simulator.
//!
//! The original DAMO-DLS is a closed-source 18M-parameter cGAN generator
//! built on a nested UNet. This reproduction implements the nested-UNet
//! generator at a matched parameter *ratio* (≈20× DOINN, per Figure 6's
//! model-size comparison) and trains it with the same MSE objective as the
//! other models — the capacity/speed comparison the paper makes survives
//! this substitution (documented in `DESIGN.md`).
//!
//! Like the original (which only supports 1000×1000 inputs), the nested
//! topology is resolution-flexible, but it is the slowest model per pixel —
//! which is exactly the Figure 6 story.

use crate::model::VggBlock;
use litho_nn::{infer, ops, Conv2d, ConvTranspose2d, Graph, InferCtx, Module, Param, Var};
use litho_tensor::Tensor;
use rand::Rng;

/// Nested-UNet generator with dense skip pathways (depth 3).
///
/// Node `x[i][j]` sits at resolution `1/2^i`; `x[i][0]` is the encoder
/// backbone, and `x[i][j]` fuses all `x[i][0..j]` plus the upsampled
/// `x[i+1][j-1]`, following the UNet++ wiring.
#[derive(Debug)]
pub struct DamoDls {
    stem: Conv2d,
    enc1: Conv2d,
    enc2: Conv2d,
    enc3: Conv2d,
    b00: VggBlock,
    b10: VggBlock,
    b20: VggBlock,
    b30: VggBlock,
    up11_from: ConvTranspose2d,
    b01: VggBlock,
    up21_from: ConvTranspose2d,
    b11: VggBlock,
    up31_from: ConvTranspose2d,
    b21: VggBlock,
    up12: ConvTranspose2d,
    b02: VggBlock,
    up22: ConvTranspose2d,
    b12: VggBlock,
    up13: ConvTranspose2d,
    b03: VggBlock,
    out: Conv2d,
}

impl DamoDls {
    /// Builds the generator with encoder widths `[b, 2b, 4b, 8b]`.
    pub fn new(base: usize, rng: &mut impl Rng) -> Self {
        let b = base;
        let (c0, c1, c2, c3) = (b, 2 * b, 4 * b, 8 * b);
        Self {
            stem: Conv2d::new(1, c0, 3, 1, 1, true, rng),
            enc1: Conv2d::new(c0, c1, 4, 2, 1, true, rng),
            enc2: Conv2d::new(c1, c2, 4, 2, 1, true, rng),
            enc3: Conv2d::new(c2, c3, 4, 2, 1, true, rng),
            b00: VggBlock::new(c0, c0, rng),
            b10: VggBlock::new(c1, c1, rng),
            b20: VggBlock::new(c2, c2, rng),
            b30: VggBlock::new(c3, c3, rng),
            up11_from: ConvTranspose2d::new(c1, c0, 4, 2, 1, true, rng),
            b01: VggBlock::new(2 * c0, c0, rng),
            up21_from: ConvTranspose2d::new(c2, c1, 4, 2, 1, true, rng),
            b11: VggBlock::new(2 * c1, c1, rng),
            up31_from: ConvTranspose2d::new(c3, c2, 4, 2, 1, true, rng),
            b21: VggBlock::new(2 * c2, c2, rng),
            up12: ConvTranspose2d::new(c1, c0, 4, 2, 1, true, rng),
            b02: VggBlock::new(3 * c0, c0, rng),
            up22: ConvTranspose2d::new(c2, c1, 4, 2, 1, true, rng),
            b12: VggBlock::new(3 * c1, c1, rng),
            up13: ConvTranspose2d::new(c1, c0, 4, 2, 1, true, rng),
            b03: VggBlock::new(4 * c0, c0, rng),
            out: Conv2d::new(c0, 1, 3, 1, 1, true, rng),
        }
    }
}

impl Module for DamoDls {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        // encoder backbone
        let s = self.stem.forward(g, x);
        let x00 = self.b00.forward(g, s);
        let d1 = self.enc1.forward(g, x00);
        let x10 = self.b10.forward(g, d1);
        let d2 = self.enc2.forward(g, x10);
        let x20 = self.b20.forward(g, d2);
        let d3 = self.enc3.forward(g, x20);
        let x30 = self.b30.forward(g, d3);
        // first nested column
        let u = self.up11_from.forward(g, x10);
        let c = ops::concat(g, &[x00, u]);
        let x01 = self.b01.forward(g, c);
        let u = self.up21_from.forward(g, x20);
        let c = ops::concat(g, &[x10, u]);
        let x11 = self.b11.forward(g, c);
        let u = self.up31_from.forward(g, x30);
        let c = ops::concat(g, &[x20, u]);
        let x21 = self.b21.forward(g, c);
        // second nested column
        let u = self.up12.forward(g, x11);
        let c = ops::concat(g, &[x00, x01, u]);
        let x02 = self.b02.forward(g, c);
        let u = self.up22.forward(g, x21);
        let c = ops::concat(g, &[x10, x11, u]);
        let x12 = self.b12.forward(g, c);
        // third nested column
        let u = self.up13.forward(g, x12);
        let c = ops::concat(g, &[x00, x01, x02, u]);
        let x03 = self.b03.forward(g, c);
        let o = self.out.forward(g, x03);
        ops::tanh(g, o)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        // mirror of forward; dense skips keep backbone features alive until
        // their last concat, then recycle
        let s = self.stem.infer(ctx, x);
        let x00 = self.b00.infer(ctx, s);
        let d1 = self.enc1.infer_ref(ctx, &x00);
        let x10 = self.b10.infer(ctx, d1);
        let d2 = self.enc2.infer_ref(ctx, &x10);
        let x20 = self.b20.infer(ctx, d2);
        let d3 = self.enc3.infer_ref(ctx, &x20);
        let x30 = self.b30.infer(ctx, d3);
        // first nested column
        let u = self.up11_from.infer_ref(ctx, &x10);
        let c = infer::concat(ctx, &[&x00, &u]);
        ctx.recycle(u);
        let x01 = self.b01.infer(ctx, c);
        let u = self.up21_from.infer_ref(ctx, &x20);
        let c = infer::concat(ctx, &[&x10, &u]);
        ctx.recycle(u);
        let x11 = self.b11.infer(ctx, c);
        let u = self.up31_from.infer(ctx, x30);
        let c = infer::concat(ctx, &[&x20, &u]);
        ctx.recycle(u);
        ctx.recycle(x20);
        let x21 = self.b21.infer(ctx, c);
        // second nested column
        let u = self.up12.infer_ref(ctx, &x11);
        let c = infer::concat(ctx, &[&x00, &x01, &u]);
        ctx.recycle(u);
        let x02 = self.b02.infer(ctx, c);
        let u = self.up22.infer(ctx, x21);
        let c = infer::concat(ctx, &[&x10, &x11, &u]);
        ctx.recycle(u);
        ctx.recycle(x10);
        ctx.recycle(x11);
        let x12 = self.b12.infer(ctx, c);
        // third nested column
        let u = self.up13.infer(ctx, x12);
        let c = infer::concat(ctx, &[&x00, &x01, &x02, &u]);
        ctx.recycle(u);
        ctx.recycle(x00);
        ctx.recycle(x01);
        ctx.recycle(x02);
        let x03 = self.b03.infer(ctx, c);
        let mut o = self.out.infer(ctx, x03);
        infer::tanh_inplace(&mut o);
        o
    }

    fn params(&self) -> Vec<Param> {
        let mods: [&dyn Module; 20] = [
            &self.stem,
            &self.enc1,
            &self.enc2,
            &self.enc3,
            &self.b00,
            &self.b10,
            &self.b20,
            &self.b30,
            &self.up11_from,
            &self.b01,
            &self.up21_from,
            &self.b11,
            &self.up31_from,
            &self.b21,
            &self.up12,
            &self.b02,
            &self.up22,
            &self.b12,
            &self.up13,
            &self.b03,
        ];
        let mut p: Vec<Param> = mods.iter().flat_map(|m| m.params()).collect();
        p.extend(self.out.params());
        p
    }

    fn set_training(&self, training: bool) {
        for b in [
            &self.b00, &self.b10, &self.b20, &self.b30, &self.b01, &self.b11, &self.b21, &self.b02,
            &self.b12, &self.b03,
        ] {
            b.set_training(training);
        }
    }

    fn is_training(&self) -> bool {
        self.b00.is_training()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::init::seeded_rng;
    use litho_tensor::Tensor;

    #[test]
    fn shape_roundtrip() {
        let mut rng = seeded_rng(1);
        let net = DamoDls::new(4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 32, 32]);
    }

    #[test]
    fn substantially_larger_than_doinn() {
        use crate::model::{Doinn, DoinnConfig};
        let mut rng = seeded_rng(2);
        let doinn = Doinn::new(DoinnConfig::scaled(), &mut rng).param_count();
        let damo = DamoDls::new(24, &mut rng).param_count();
        let ratio = damo as f32 / doinn as f32;
        assert!(
            ratio > 8.0,
            "DAMO-like should dwarf DOINN: {damo} vs {doinn} (ratio {ratio:.1})"
        );
    }

    #[test]
    fn output_bounded() {
        let mut rng = seeded_rng(3);
        let net = DamoDls::new(4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(litho_tensor::init::randn(&[1, 1, 32, 32], 1.0, &mut rng));
        let y = net.forward(&mut g, x);
        assert!(g.value(y).as_slice().iter().all(|v| v.abs() <= 1.0));
    }
}
