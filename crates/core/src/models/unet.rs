//! U-Net baseline [28] — the standard encoder/decoder with skip connections
//! the paper compares against in Table 2 and Figures 6/8.

use crate::model::VggBlock;
use litho_nn::{infer, ops, Conv2d, ConvTranspose2d, Graph, InferCtx, Module, Param, Var};
use litho_tensor::Tensor;
use rand::Rng;

/// A three-level U-Net with Tanh output, sized by a base channel width.
#[derive(Debug)]
pub struct Unet {
    enc1: Conv2d,
    block1: VggBlock,
    enc2: Conv2d,
    block2: VggBlock,
    enc3: Conv2d,
    bottleneck: VggBlock,
    up3: ConvTranspose2d,
    dec3: VggBlock,
    up2: ConvTranspose2d,
    dec2: VggBlock,
    up1: ConvTranspose2d,
    out: Conv2d,
}

impl Unet {
    /// Builds a U-Net with encoder widths `[b, 2b, 4b]`.
    pub fn new(base: usize, rng: &mut impl Rng) -> Self {
        let b = base;
        Self {
            enc1: Conv2d::new(1, b, 4, 2, 1, true, rng),
            block1: VggBlock::new(b, b, rng),
            enc2: Conv2d::new(b, 2 * b, 4, 2, 1, true, rng),
            block2: VggBlock::new(2 * b, 2 * b, rng),
            enc3: Conv2d::new(2 * b, 4 * b, 4, 2, 1, true, rng),
            bottleneck: VggBlock::new(4 * b, 4 * b, rng),
            up3: ConvTranspose2d::new(4 * b, 2 * b, 4, 2, 1, true, rng),
            dec3: VggBlock::new(4 * b, 2 * b, rng),
            up2: ConvTranspose2d::new(2 * b, b, 4, 2, 1, true, rng),
            dec2: VggBlock::new(2 * b, b, rng),
            up1: ConvTranspose2d::new(b, b, 4, 2, 1, true, rng),
            out: Conv2d::new(b, 1, 3, 1, 1, true, rng),
        }
    }
}

impl Module for Unet {
    fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let d1 = self.enc1.forward(g, x);
        let e1 = self.block1.forward(g, d1);
        let e2 = {
            let d = self.enc2.forward(g, e1);
            self.block2.forward(g, d)
        };
        let e3 = {
            let d = self.enc3.forward(g, e2);
            self.bottleneck.forward(g, d)
        };
        let u3 = self.up3.forward(g, e3);
        let c3 = ops::concat(g, &[u3, e2]);
        let d3 = self.dec3.forward(g, c3);
        let u2 = self.up2.forward(g, d3);
        let c2 = ops::concat(g, &[u2, e1]);
        let d2 = self.dec2.forward(g, c2);
        let u1 = self.up1.forward(g, d2);
        let o = self.out.forward(g, u1);
        ops::tanh(g, o)
    }

    fn infer(&self, ctx: &mut InferCtx, x: Tensor) -> Tensor {
        // mirror of forward, with skip activations recycled after their join
        let d1 = self.enc1.infer(ctx, x);
        let e1 = self.block1.infer(ctx, d1);
        let d = self.enc2.infer_ref(ctx, &e1);
        let e2 = self.block2.infer(ctx, d);
        let d = self.enc3.infer_ref(ctx, &e2);
        let e3 = self.bottleneck.infer(ctx, d);
        let u3 = self.up3.infer(ctx, e3);
        let c3 = infer::concat(ctx, &[&u3, &e2]);
        ctx.recycle(u3);
        ctx.recycle(e2);
        let d3 = self.dec3.infer(ctx, c3);
        let u2 = self.up2.infer(ctx, d3);
        let c2 = infer::concat(ctx, &[&u2, &e1]);
        ctx.recycle(u2);
        ctx.recycle(e1);
        let d2 = self.dec2.infer(ctx, c2);
        let u1 = self.up1.infer(ctx, d2);
        let mut o = self.out.infer(ctx, u1);
        infer::tanh_inplace(&mut o);
        o
    }

    fn params(&self) -> Vec<Param> {
        let mods: [&dyn Module; 12] = [
            &self.enc1,
            &self.block1,
            &self.enc2,
            &self.block2,
            &self.enc3,
            &self.bottleneck,
            &self.up3,
            &self.dec3,
            &self.up2,
            &self.dec2,
            &self.up1,
            &self.out,
        ];
        mods.iter().flat_map(|m| m.params()).collect()
    }

    fn set_training(&self, training: bool) {
        for b in [
            &self.block1,
            &self.block2,
            &self.bottleneck,
            &self.dec3,
            &self.dec2,
        ] {
            b.set_training(training);
        }
    }

    fn is_training(&self) -> bool {
        self.block1.is_training()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_tensor::init::seeded_rng;
    use litho_tensor::Tensor;

    #[test]
    fn shape_roundtrip() {
        let mut rng = seeded_rng(1);
        let net = Unet::new(4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[1, 1, 32, 32]));
        let y = net.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[1, 1, 32, 32]);
    }

    #[test]
    fn width_scales_parameters() {
        let mut rng = seeded_rng(2);
        let small = Unet::new(4, &mut rng).param_count();
        let big = Unet::new(8, &mut rng).param_count();
        assert!(big > 3 * small, "params {small} vs {big}");
    }

    #[test]
    fn output_is_tanh_bounded() {
        let mut rng = seeded_rng(3);
        let net = Unet::new(4, &mut rng);
        let mut g = Graph::new();
        let x = g.input(litho_tensor::init::randn(&[1, 1, 32, 32], 1.0, &mut rng));
        let y = net.forward(&mut g, x);
        assert!(g.value(y).as_slice().iter().all(|v| v.abs() <= 1.0));
    }
}
