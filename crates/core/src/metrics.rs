//! Evaluation metrics from §2.2 of the paper.
//!
//! Lithography contour prediction is treated as two-class (contour /
//! background) pixel classification; quality is scored with mean
//! intersection-over-union (Definition 1) and mean pixel accuracy
//! (Definition 2), exactly as in DAMO and the paper's Tables 2–4.

/// Two-class segmentation metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegMetrics {
    /// Mean intersection-over-union across {contour, background}, in \[0,1\].
    pub miou: f32,
    /// Mean pixel accuracy across {contour, background}, in \[0,1\].
    pub mpa: f32,
}

impl SegMetrics {
    /// Averages a set of per-tile metrics.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn mean(items: &[SegMetrics]) -> SegMetrics {
        assert!(!items.is_empty(), "cannot average zero metric sets");
        let n = items.len() as f32;
        SegMetrics {
            miou: items.iter().map(|m| m.miou).sum::<f32>() / n,
            mpa: items.iter().map(|m| m.mpa).sum::<f32>() / n,
        }
    }
}

impl std::fmt::Display for SegMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mPA {:.2}% / mIOU {:.2}%",
            self.mpa * 100.0,
            self.miou * 100.0
        )
    }
}

/// Computes [`SegMetrics`] between a predicted and a golden binary image.
///
/// Pixels ≥ `0.5` count as contour. A class absent from both prediction and
/// ground truth scores 1.0 (perfect) for both metrics, following the usual
/// segmentation convention.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn seg_metrics(pred: &[f32], golden: &[f32]) -> SegMetrics {
    assert_eq!(pred.len(), golden.len(), "image length mismatch");
    // confusion counts for the two classes
    let mut inter_fg = 0usize;
    let mut pred_fg = 0usize;
    let mut gold_fg = 0usize;
    let mut inter_bg = 0usize;
    let mut pred_bg = 0usize;
    let mut gold_bg = 0usize;
    for (&p, &g) in pred.iter().zip(golden) {
        let ps = p >= 0.5;
        let gs = g >= 0.5;
        match (ps, gs) {
            (true, true) => {
                inter_fg += 1;
                pred_fg += 1;
                gold_fg += 1;
            }
            (true, false) => {
                pred_fg += 1;
                gold_bg += 1;
            }
            (false, true) => {
                pred_bg += 1;
                gold_fg += 1;
            }
            (false, false) => {
                inter_bg += 1;
                pred_bg += 1;
                gold_bg += 1;
            }
        }
    }
    let iou = |inter: usize, a: usize, b: usize| {
        let union = a + b - inter;
        if union == 0 {
            1.0
        } else {
            inter as f32 / union as f32
        }
    };
    let pa = |inter: usize, gold: usize| {
        if gold == 0 {
            1.0
        } else {
            inter as f32 / gold as f32
        }
    };
    SegMetrics {
        miou: 0.5 * (iou(inter_fg, pred_fg, gold_fg) + iou(inter_bg, pred_bg, gold_bg)),
        mpa: 0.5 * (pa(inter_fg, gold_fg) + pa(inter_bg, gold_bg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let img = vec![0.0, 1.0, 1.0, 0.0];
        let m = seg_metrics(&img, &img);
        assert_eq!(m.miou, 1.0);
        assert_eq!(m.mpa, 1.0);
    }

    #[test]
    fn inverted_prediction_scores_zero() {
        let g = vec![0.0, 1.0];
        let p = vec![1.0, 0.0];
        let m = seg_metrics(&p, &g);
        assert_eq!(m.miou, 0.0);
        assert_eq!(m.mpa, 0.0);
    }

    #[test]
    fn half_overlap_foreground() {
        // golden fg: 2 pixels; pred fg: 2 pixels, 1 overlapping; 4 pixels total bg golden: 2
        let g = vec![1.0, 1.0, 0.0, 0.0];
        let p = vec![1.0, 0.0, 1.0, 0.0];
        let m = seg_metrics(&p, &g);
        // fg IoU = 1/3, bg IoU = 1/3 -> miou = 1/3
        assert!((m.miou - 1.0 / 3.0).abs() < 1e-6);
        // fg PA = 1/2, bg PA = 1/2
        assert!((m.mpa - 0.5).abs() < 1e-6);
    }

    #[test]
    fn empty_class_counts_perfect() {
        let g = vec![0.0; 8];
        let p = vec![0.0; 8];
        let m = seg_metrics(&p, &g);
        assert_eq!(m.miou, 1.0);
        assert_eq!(m.mpa, 1.0);
    }

    #[test]
    fn metrics_are_symmetric_under_class_swap() {
        let g = vec![1.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        let p = vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let m1 = seg_metrics(&p, &g);
        let inv = |v: &[f32]| v.iter().map(|x| 1.0 - x).collect::<Vec<_>>();
        let m2 = seg_metrics(&inv(&p), &inv(&g));
        assert!((m1.miou - m2.miou).abs() < 1e-6);
    }

    #[test]
    fn mean_aggregates() {
        let a = SegMetrics {
            miou: 0.8,
            mpa: 0.9,
        };
        let b = SegMetrics {
            miou: 0.6,
            mpa: 0.7,
        };
        let m = SegMetrics::mean(&[a, b]);
        assert!((m.miou - 0.7).abs() < 1e-6);
        assert!((m.mpa - 0.8).abs() < 1e-6);
    }

    #[test]
    fn display_formats_percentages() {
        let m = SegMetrics {
            miou: 0.9779,
            mpa: 0.9898,
        };
        assert_eq!(m.to_string(), "mPA 98.98% / mIOU 97.79%");
    }
}
