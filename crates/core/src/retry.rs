//! Bounded retry with exponential backoff for transient tile I/O faults.
//!
//! The streaming pipeline treats an `io::ErrorKind::Interrupted` /
//! `WouldBlock` / `TimedOut` from a [`TileSource`] or [`TileSink`] as
//! *transient*: the same operation is re-issued up to
//! [`RetryPolicy::max_attempts`] times, sleeping an exponentially growing,
//! capped backoff between attempts. Anything else (corrupt data, a dead
//! disk) is permanent and propagates immediately.
//!
//! Sleeping is abstracted behind [`BackoffSleeper`] so the *policy* stays
//! wall-clock-free: production uses [`ThreadSleeper`], deterministic tests
//! use [`NoSleep`] or [`RecordingSleeper`] (or an adapter driving
//! `litho_serve::SimClock`), and the retry schedule itself — which
//! attempts happen, with which backoff — is a pure function of the policy
//! and the error sequence.
//!
//! [`TileSource`]: crate::TileSource
//! [`TileSink`]: crate::TileSink

use std::io;
use std::time::Duration;

/// How many times to attempt a transient-faulting I/O operation, and how
/// long to back off between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included). `1` = no retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// A policy with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    #[must_use]
    pub fn new(max_attempts: u32, base_backoff: Duration, max_backoff: Duration) -> Self {
        assert!(max_attempts >= 1, "at least one attempt is required");
        Self {
            max_attempts,
            base_backoff,
            max_backoff,
        }
    }

    /// No retries: every error is final. The default for plain streaming.
    #[must_use]
    pub fn none() -> Self {
        Self::new(1, Duration::ZERO, Duration::ZERO)
    }

    /// A sane production default for disk I/O: 4 attempts, 10 ms base
    /// backoff, capped at 160 ms.
    #[must_use]
    pub fn default_io() -> Self {
        Self::new(4, Duration::from_millis(10), Duration::from_millis(160))
    }

    /// Backoff to sleep after the `attempt`-th failed attempt (1-based):
    /// `base · 2^(attempt−1)`, saturating at [`RetryPolicy::max_backoff`].
    #[must_use]
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(20);
        (self.base_backoff * factor).min(self.max_backoff)
    }

    /// Is this error kind worth retrying? `Interrupted` (EINTR),
    /// `WouldBlock` and `TimedOut` are; data corruption and everything
    /// else are permanent.
    #[must_use]
    pub fn is_transient(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        )
    }
}

/// Where retry backoff time comes from. Implementations decide whether
/// "sleep" means real wall time, simulated time, or nothing at all.
pub trait BackoffSleeper {
    /// Waits out `d` before the next attempt.
    fn sleep(&mut self, d: Duration);
}

/// Never sleeps: retries are immediate. The right sleeper for
/// deterministic tests that only care about attempt counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoSleep;

impl BackoffSleeper for NoSleep {
    fn sleep(&mut self, _d: Duration) {}
}

/// Sleeps real wall time on the calling thread — the production sleeper.
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl BackoffSleeper for ThreadSleeper {
    fn sleep(&mut self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// Records every requested backoff instead of sleeping — tests assert the
/// exact schedule (and a simulated clock can be advanced from it).
#[derive(Debug, Default)]
pub struct RecordingSleeper {
    /// The backoffs requested so far, in order.
    pub slept: Vec<Duration>,
}

impl BackoffSleeper for RecordingSleeper {
    fn sleep(&mut self, d: Duration) {
        self.slept.push(d);
    }
}

/// Runs `op` under `policy`: transient errors are retried (after
/// `sleeper`-mediated backoff) until they clear or attempts run out;
/// permanent errors return immediately. On success returns the value and
/// the number of retries it took.
///
/// # Errors
///
/// The last error, once attempts are exhausted or a permanent error hits.
pub fn retry_with_backoff<T>(
    policy: &RetryPolicy,
    sleeper: &mut dyn BackoffSleeper,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<(T, u32)> {
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(v) => return Ok((v, attempt - 1)),
            Err(e) if RetryPolicy::is_transient(e.kind()) && attempt < policy.max_attempts => {
                sleeper.sleep(policy.backoff_for(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy::new(8, Duration::from_millis(10), Duration::from_millis(45));
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
        assert_eq!(p.backoff_for(4), Duration::from_millis(45)); // capped
        assert_eq!(p.backoff_for(30), Duration::from_millis(45)); // no overflow
    }

    #[test]
    fn transient_errors_clear_within_budget() {
        let p = RetryPolicy::new(3, Duration::from_millis(5), Duration::from_millis(20));
        let mut sleeper = RecordingSleeper::default();
        let mut calls = 0;
        let (v, retries) = retry_with_backoff(&p, &mut sleeper, || {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!((v, retries, calls), (42, 2, 3));
        assert_eq!(
            sleeper.slept,
            vec![Duration::from_millis(5), Duration::from_millis(10)]
        );
    }

    #[test]
    fn budget_exhaustion_surfaces_the_last_error() {
        let p = RetryPolicy::new(2, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let err = retry_with_backoff(&p, &mut NoSleep, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "still down"))
        })
        .unwrap_err();
        assert_eq!(calls, 2);
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn permanent_errors_do_not_retry() {
        let p = RetryPolicy::new(5, Duration::ZERO, Duration::ZERO);
        let mut calls = 0;
        let err = retry_with_backoff(&p, &mut NoSleep, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::InvalidData, "corrupt"))
        })
        .unwrap_err();
        assert_eq!(calls, 1, "InvalidData must not be retried");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn no_retry_policy_is_single_attempt() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        let mut calls = 0;
        let err = retry_with_backoff(&p, &mut NoSleep, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
        })
        .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
    }
}
