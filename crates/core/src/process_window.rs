//! Process-window qualification of a trained model: per-corner scoring and
//! the worst-corner degradation table.
//!
//! A model trained at nominal conditions approximates the nominal print; a
//! corner sweep measures how far its prediction drifts from the *golden*
//! print as dose and focus move across the window. Each corner is scored
//! with the paper's mPA/mIOU segmentation metrics plus edge-placement error
//! in nanometres ([`litho_geometry::measure_epe`]), and the report compares
//! every corner against the most-nominal one.
//!
//! The `(corner, tile)` fan-out is distributed over the `litho-parallel`
//! pool: one work item per pair, results collected in index order and
//! aggregated serially in corner order, so the report is **bit-identical
//! for every `LITHO_THREADS`** (the model is forced into eval mode for the
//! duration — and restored afterwards — because training-mode batch-norm
//! would make concurrent forwards scheduling-dependent).

use crate::metrics::{seg_metrics, SegMetrics};
use crate::model::prediction_to_contour;
use litho_geometry::{measure_epe, EpeStats};
use litho_nn::{infer, Module};
use litho_optics::ProcessCondition;
use litho_tensor::Tensor;

/// One corner's tile set: the condition plus `(mask, golden print)` pairs.
///
/// Mirrors `litho_data::CornerSet` structurally; this crate does not depend
/// on `litho-data`, so sweeps built there are converted at the call site by
/// mapping each corner to `(corner.condition, corner.samples.as_slice())`.
pub type CornerSamples<'a> = (ProcessCondition, &'a [(Tensor, Tensor)]);

/// Evaluation knobs for [`evaluate_process_window`].
#[derive(Debug, Clone, Copy)]
pub struct CornerEvalConfig {
    /// Pixel pitch of the tiles in nanometres (EPE is reported in nm).
    pub pixel_nm: f32,
    /// Every n-th golden boundary pixel is EPE-sampled.
    pub epe_sample_stride: usize,
    /// EPE above this threshold counts as a violation, in nm.
    pub epe_threshold_nm: f32,
}

impl CornerEvalConfig {
    /// Defaults for a pixel pitch: stride 2, violation threshold one pixel.
    pub fn for_pixel(pixel_nm: f32) -> Self {
        Self {
            pixel_nm,
            epe_sample_stride: 2,
            epe_threshold_nm: pixel_nm,
        }
    }
}

/// Scores of one process corner.
#[derive(Debug, Clone, Copy)]
pub struct CornerScore {
    /// The corner's operating point.
    pub condition: ProcessCondition,
    /// Dataset-mean mPA/mIOU against the corner's golden prints.
    pub metrics: SegMetrics,
    /// Pooled edge-placement error against the corner's golden prints.
    pub epe: EpeStats,
}

/// Per-corner scores plus the nominal reference.
#[derive(Debug, Clone)]
pub struct ProcessWindowReport {
    /// One score per corner, in input order.
    pub corners: Vec<CornerScore>,
    /// Index of the most-nominal corner (the degradation reference).
    pub nominal: usize,
}

impl ProcessWindowReport {
    /// The score at the most-nominal corner.
    pub fn nominal_score(&self) -> &CornerScore {
        &self.corners[self.nominal]
    }

    /// The corner with the lowest mIOU.
    pub fn worst_corner(&self) -> &CornerScore {
        self.corners
            .iter()
            .min_by(|a, b| {
                a.metrics
                    .miou
                    .partial_cmp(&b.metrics.miou)
                    .expect("finite metrics")
            })
            .expect("non-empty report")
    }

    /// mIOU drop from the nominal corner to the worst corner, in points
    /// (`0.01` = one percentage point).
    pub fn miou_degradation(&self) -> f32 {
        self.nominal_score().metrics.miou - self.worst_corner().metrics.miou
    }

    /// Formats the per-corner table with a worst-vs-nominal footer.
    pub fn table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>8} {:>10} {:>10} {:>7}",
            "condition", "mPA %", "mIOU %", "EPE μ nm", "EPE max", "viol %"
        );
        for (i, c) in self.corners.iter().enumerate() {
            let marker = if i == self.nominal { " *" } else { "" };
            let _ = writeln!(
                out,
                "{:<26} {:>8.2} {:>8.2} {:>10.2} {:>10.2} {:>7.2}",
                format!("{}{marker}", c.condition),
                c.metrics.mpa * 100.0,
                c.metrics.miou * 100.0,
                c.epe.mean_nm,
                c.epe.max_nm,
                c.epe.violation_rate() * 100.0,
            );
        }
        let worst = self.worst_corner();
        let _ = writeln!(
            out,
            "worst corner ({}): mIOU {:.2}% vs nominal {:.2}% (Δ {:.2} pts)",
            worst.condition,
            worst.metrics.miou * 100.0,
            self.nominal_score().metrics.miou * 100.0,
            self.miou_degradation() * 100.0,
        );
        out
    }
}

/// Scores `model` at every corner of a process window, fanning the
/// `(corner, tile)` pairs over the process-wide
/// [`litho_parallel::global`] pool.
///
/// See [`evaluate_process_window_with_pool`] for the full contract.
pub fn evaluate_process_window<M: Module + Sync + ?Sized>(
    model: &M,
    corners: &[CornerSamples<'_>],
    cfg: &CornerEvalConfig,
) -> ProcessWindowReport {
    evaluate_process_window_with_pool(model, corners, cfg, litho_parallel::global())
}

/// [`evaluate_process_window`] on an explicit [`litho_parallel::Pool`].
///
/// Every `(corner, tile)` pair is one work item: predict the mask's
/// contour, score it against that corner's golden print (mPA/mIOU + EPE).
/// Work items write disjoint result slots and aggregation folds in fixed
/// corner order, so the report is bit-identical for every pool size. The
/// model is evaluated in inference mode; its previous mode is restored.
///
/// # Panics
///
/// Panics if `corners` is empty or any corner has no samples.
pub fn evaluate_process_window_with_pool<M: Module + Sync + ?Sized>(
    model: &M,
    corners: &[CornerSamples<'_>],
    cfg: &CornerEvalConfig,
    pool: &litho_parallel::Pool,
) -> ProcessWindowReport {
    assert!(!corners.is_empty(), "no process corners to evaluate");
    for (cond, samples) in corners {
        assert!(!samples.is_empty(), "corner {cond} has no samples");
    }
    let was_training = model.is_training();
    model.set_training(false);

    // flatten to one work item per (corner, tile)
    let jobs: Vec<(usize, usize)> = corners
        .iter()
        .enumerate()
        .flat_map(|(ci, (_, samples))| (0..samples.len()).map(move |si| (ci, si)))
        .collect();
    let per_tile: Vec<(SegMetrics, EpeStats)> = infer::par_infer_map(pool, jobs.len(), |ctx, j| {
        let (ci, si) = jobs[j];
        let (mask, golden) = &corners[ci].1[si];
        let shape = [1, mask.dim(0), mask.dim(1), mask.dim(2)];
        let pred = model.infer(ctx, mask.reshape(&shape));
        let contour = prediction_to_contour(&pred);
        ctx.recycle(pred);
        let size = mask.dim(mask.rank() - 1);
        (
            seg_metrics(&contour, golden.as_slice()),
            measure_epe(
                &contour,
                golden.as_slice(),
                size,
                cfg.pixel_nm,
                cfg.epe_sample_stride,
                cfg.epe_threshold_nm,
            ),
        )
    });
    model.set_training(was_training);

    // aggregate per corner, in corner order (deterministic fold)
    let mut scores = Vec::with_capacity(corners.len());
    let mut offset = 0usize;
    for (condition, samples) in corners {
        let tile_scores = &per_tile[offset..offset + samples.len()];
        offset += samples.len();
        let seg: Vec<SegMetrics> = tile_scores.iter().map(|(m, _)| *m).collect();
        let epe: Vec<EpeStats> = tile_scores.iter().map(|(_, e)| *e).collect();
        scores.push(CornerScore {
            condition: *condition,
            metrics: SegMetrics::mean(&seg),
            epe: EpeStats::aggregate(&epe),
        });
    }
    let conditions: Vec<ProcessCondition> = scores.iter().map(|s| s.condition).collect();
    ProcessWindowReport {
        corners: scores,
        nominal: litho_optics::most_nominal_index(&conditions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Doinn, DoinnConfig};
    use crate::trainer::to_tanh_target;
    use litho_nn::Module;
    use litho_tensor::init::seeded_rng;

    fn toy_corner(seed: u64, n: usize, size: usize) -> Vec<(Tensor, Tensor)> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| {
                let noise = litho_tensor::init::randn(&[1, size, size], 1.0, &mut rng);
                let mask = noise.map(|v| if v > 0.6 { 1.0 } else { 0.0 });
                let golden = to_tanh_target(&mask).map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                (mask, golden)
            })
            .collect()
    }

    #[test]
    fn report_shape_and_nominal_selection() {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let a = toy_corner(10, 2, 32);
        let b = toy_corner(11, 2, 32);
        let corners: Vec<CornerSamples<'_>> = vec![
            (ProcessCondition::new(1.05, 40.0), a.as_slice()),
            (ProcessCondition::nominal(), b.as_slice()),
        ];
        let report = evaluate_process_window(&model, &corners, &CornerEvalConfig::for_pixel(8.0));
        assert_eq!(report.corners.len(), 2);
        assert_eq!(report.nominal, 1, "nominal corner must be the reference");
        for c in &report.corners {
            assert!((0.0..=1.0).contains(&c.metrics.miou));
            assert!((0.0..=1.0).contains(&c.metrics.mpa));
            assert!(c.epe.samples > 0);
        }
        assert!(report.miou_degradation() >= 0.0 || report.corners.len() == 1);
        let table = report.table();
        assert!(table.contains("nominal *"), "table: {table}");
        assert!(table.contains("worst corner"));
    }

    #[test]
    fn evaluation_restores_model_mode() {
        let mut rng = seeded_rng(2);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let samples = toy_corner(12, 1, 32);
        let corners: Vec<CornerSamples<'_>> =
            vec![(ProcessCondition::nominal(), samples.as_slice())];
        model.set_training(true);
        let _ = evaluate_process_window(&model, &corners, &CornerEvalConfig::for_pixel(8.0));
        assert!(model.is_training(), "training mode must be restored");
    }

    #[test]
    fn fanout_bit_identical_across_pool_sizes() {
        let mut rng = seeded_rng(3);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let a = toy_corner(20, 3, 32);
        let b = toy_corner(21, 3, 32);
        let c = toy_corner(22, 3, 32);
        let corners: Vec<CornerSamples<'_>> = vec![
            (ProcessCondition::new(0.95, -40.0), a.as_slice()),
            (ProcessCondition::nominal(), b.as_slice()),
            (ProcessCondition::new(1.05, 40.0), c.as_slice()),
        ];
        let cfg = CornerEvalConfig::for_pixel(8.0);
        let want = evaluate_process_window_with_pool(
            &model,
            &corners,
            &cfg,
            &litho_parallel::Pool::new(1),
        );
        for threads in [2usize, 4] {
            let got = evaluate_process_window_with_pool(
                &model,
                &corners,
                &cfg,
                &litho_parallel::Pool::new(threads),
            );
            assert_eq!(got.nominal, want.nominal);
            for (x, y) in want.corners.iter().zip(&got.corners) {
                assert_eq!(x.metrics.miou.to_bits(), y.metrics.miou.to_bits());
                assert_eq!(x.metrics.mpa.to_bits(), y.metrics.mpa.to_bits());
                assert_eq!(x.epe.mean_nm.to_bits(), y.epe.mean_nm.to_bits());
                assert_eq!(x.epe.max_nm.to_bits(), y.epe.max_nm.to_bits());
                assert_eq!(x.epe.violations, y.epe.violations);
                assert_eq!(x.epe.samples, y.epe.samples);
            }
        }
    }
}
