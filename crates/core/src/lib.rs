//! # doinn
//!
//! Reproduction of **"Generic Lithography Modeling with Dual-band
//! Optics-Inspired Neural Networks"** (Yang et al., DAC 2022) — the paper's
//! primary contribution, built on the pure-Rust substrates in this workspace
//! (`litho-fft`, `litho-tensor`, `litho-nn`, `litho-optics`, `litho-layout`).
//!
//! - [`fourier`] — the optimized Fourier Unit (eq. 11) and the baseline FNO
//!   spectral layer (eq. 10) as custom autograd ops.
//! - [`Doinn`] / [`DoinnConfig`] — the dual-band GP/LP/IR network with the
//!   Table 3 ablation switches.
//! - [`models`] — the comparison baselines: [`models::Unet`],
//!   [`models::DamoDls`] (nested-UNet DAMO-like), [`models::Fno`].
//! - [`LargeTileSimulator`] — the §3.2 any-size tile scheme.
//! - [`streaming`] — the bounded-memory full-chip engine: super-tile
//!   pipeline over [`ChipStreamer`] with on-disk sources/sinks
//!   (`litho_data::ChunkedRaster`), transient-fault retry ([`retry`]),
//!   per-tile quarantine, and journal-backed crash-safe resume
//!   ([`ChipStreamer::resume_stream`]).
//! - [`seg_metrics`] — mPA / mIOU (§2.2).
//! - [`train_model`] / [`evaluate_model`] — the Table 8 training recipe.
//! - [`evaluate_process_window`] — per-corner scoring of a trained model
//!   across a dose × defocus sweep, with a worst-corner degradation table.
//! - [`predict`] / [`predict_batch`] — tape-free inference: every serving
//!   path (`predict*`, the large-tile scheme, `evaluate_model`,
//!   `evaluate_process_window`) runs graph-free through
//!   [`litho_nn::Module::infer`] with buffer reuse, bit-identical to the
//!   graph forward (see `litho_nn::infer`).
//!
//! # Examples
//!
//! Build a small DOINN and run a forward pass:
//!
//! ```
//! use doinn::{Doinn, DoinnConfig};
//! use litho_nn::{Graph, Module};
//! use litho_tensor::{init::seeded_rng, Tensor};
//!
//! let mut rng = seeded_rng(0);
//! let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
//! let mut g = Graph::new();
//! let mask = g.input(Tensor::zeros(&[1, 1, 64, 64]));
//! let contour = model.forward(&mut g, mask);
//! assert_eq!(g.value(contour).shape(), &[1, 1, 64, 64]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fourier;
mod large_tile;
mod metrics;
mod model;
pub mod models;
mod process_window;
pub mod retry;
pub mod streaming;
mod trainer;

pub use large_tile::LargeTileSimulator;
pub use metrics::{seg_metrics, SegMetrics};
pub use model::{
    predict, predict_batch, predict_batch_with_pool, predict_with_ctx, prediction_to_contour,
    Doinn, DoinnConfig, FourierUnit, VggBlock,
};
pub use process_window::{
    evaluate_process_window, evaluate_process_window_with_pool, CornerEvalConfig, CornerSamples,
    CornerScore, ProcessWindowReport,
};
pub use retry::{
    retry_with_backoff, BackoffSleeper, NoSleep, RecordingSleeper, RetryPolicy, ThreadSleeper,
};
pub use streaming::{
    ChipStreamer, QuarantinedTile, StreamConfig, StreamReport, TileSink, TileSource,
};
pub use trainer::{
    evaluate_model, to_tanh_target, train_model, EarlyStop, Sample, TrainConfig, TrainReport,
};
