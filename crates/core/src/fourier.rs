//! The optics-inspired Fourier operators (§3.1.1 of the paper).
//!
//! Two differentiable operators are registered on the `litho-nn` tape:
//!
//! - [`spectral_conv2d`] — the generic FNO Fourier-layer kernel
//!   `F⁻¹(R · F(V)_k-truncated)` of eq. (10), with complex per-frequency
//!   mixing weights `R ∈ C^{Ci×Co×2k×2k}`.
//! - [`fourier_unit`] — the paper's *optimized Fourier Unit* of eq. (11):
//!   a single FFT on the 1-channel input, frequency-truncated channel lift
//!   `W_P ∈ C^{1×C}`, per-frequency mixing `W_R ∈ C^{C×C×2k×2k}`, and one
//!   inverse FFT per output channel. Because the lift happens *after* the
//!   (single) forward FFT, `C−1` forward FFTs are saved relative to the
//!   baseline FNO layer — the ~50 % runtime saving claimed in §3.1.1.
//!
//! Truncation keeps the `k` lowest frequencies per axis *and sign* (the four
//! corners of the spectrum, `2k × 2k` modes total), preserving Hermitian
//! symmetry for real inputs.
//!
//! Complex weights are stored as separate real/imaginary [`Param`](litho_nn::Param) tensors;
//! gradients follow the real-pair (Wirtinger) rules `∇_w = conj(x)·ḡ`,
//! `∇_x = conj(w)·ḡ`, and the FFT adjoints `F^H = N·F⁻¹`, `(F⁻¹)^H = F/N`.
//!
//! ## Spectral execution
//!
//! Both operators run on the `litho-fft` spectral engine: plans come from
//! the process-wide cache ([`litho_fft::plans`] — nothing here re-plans per
//! forward), the truncated forward is the fused mode-pruned real transform
//! ([`Fft2::forward_modes_into`](litho_fft::Fft2::forward_modes_into) — no
//! full spectrum is ever materialised), and the truncated inverse is
//! [`Fft2::inverse_from_modes_into`](litho_fft::Fft2::inverse_from_modes_into),
//! which computes exactly the `Re(F⁻¹(scatter(modes)))` the old dense path
//! produced while transforming only the non-zero columns. All complex
//! scratch (input modes, accumulators, weight staging, FFT staging) is drawn
//! from the [`InferCtx`] complex buffer pool, so a warm tape-free forward
//! allocates nothing — including complex scratch (asserted by
//! `crates/core/tests/infer_alloc.rs`).

use litho_fft::{Complex32, Fft2};
use litho_nn::{Graph, InferCtx, Var};
use litho_tensor::Tensor;

/// Index set of the `k` lowest-frequency bins per axis: `[0,k) ∪ [n−k,n)`.
///
/// `k` is clamped to `n/2` so the two corners never overlap. A degenerate
/// one-bin axis yields `[0]` alone: bin 0 is simultaneously the lowest
/// positive and negative frequency there, and emitting it from both corners
/// would double-count DC in the gather/scatter passes.
pub fn mode_indices(n: usize, k: usize) -> Vec<usize> {
    if n == 1 {
        return vec![0];
    }
    let k = k.min(n / 2).max(1);
    let mut idx: Vec<usize> = (0..k).collect();
    idx.extend(n - k..n);
    idx
}

/// Loads a complex weight stored as two real tensors into a flat buffer.
/// (Training-path convenience; hot paths use [`to_complex_into`] with pooled
/// scratch.)
fn to_complex(re: &Tensor, im: &Tensor) -> Vec<Complex32> {
    let mut out = vec![Complex32::ZERO; re.numel()];
    to_complex_into(re, im, &mut out);
    out
}

/// Zips two real tensors into a caller-provided complex buffer.
fn to_complex_into(re: &Tensor, im: &Tensor, out: &mut [Complex32]) {
    for ((dst, &r), &i) in out.iter_mut().zip(re.as_slice()).zip(im.as_slice()) {
        *dst = Complex32::new(r, i);
    }
}

/// Computes the truncated input modes of every `(batch, channel)` plane of a
/// real NCHW tensor slice via the mode-pruned forward transform, writing
/// `nmodes` complex values per plane into `t_all`.
fn input_modes_into(
    fft: &Fft2,
    planes: &[f32],
    plane_count: usize,
    iy: &[usize],
    ix: &[usize],
    t_all: &mut [Complex32],
    scratch: &mut [Complex32],
    pool: &litho_parallel::Pool,
) {
    let hw = fft.len();
    let nmodes = iy.len() * ix.len();
    for p in 0..plane_count {
        fft.forward_modes_into(
            &planes[p * hw..(p + 1) * hw],
            iy,
            ix,
            &mut t_all[p * nmodes..(p + 1) * nmodes],
            scratch,
            pool,
        );
    }
}

/// Shared forward kernel of the FNO spectral conv: writes the full output
/// `[N, Co, h, w]` (every element overwritten). Both the graph op and the
/// tape-free eval path route through this, which keeps them bit-identical;
/// all complex scratch comes from the [`InferCtx`] pool.
fn spectral_conv2d_fill(
    ctx: &mut InferCtx,
    x: &Tensor,
    weights: &[Complex32],
    co: usize,
    iy: &[usize],
    ix: &[usize],
    out: &mut Tensor,
) {
    let (n, ci, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let nmodes = iy.len() * ix.len();
    let fft = litho_fft::plans(h, w);
    let pool = ctx.pool().clone();
    let mut t_all = ctx.alloc_complex(n * ci * nmodes);
    let mut fwd_scratch = ctx.alloc_complex(fft.modes_scratch_len());
    input_modes_into(
        &fft,
        x.as_slice(),
        n * ci,
        iy,
        ix,
        &mut t_all,
        &mut fwd_scratch,
        &pool,
    );
    ctx.recycle_complex(fwd_scratch);
    let mut acc = ctx.alloc_complex(nmodes);
    let targets = fft.packed_targets(ix);
    let mut inv_scratch = ctx.alloc_complex(fft.inverse_modes_scratch_len(&targets));
    let od = out.as_mut_slice();
    for b in 0..n {
        for o in 0..co {
            acc.fill(Complex32::ZERO);
            for c in 0..ci {
                let t = &t_all[(b * ci + c) * nmodes..(b * ci + c + 1) * nmodes];
                let wslice = &weights[(c * co + o) * nmodes..(c * co + o + 1) * nmodes];
                for f in 0..nmodes {
                    acc[f] = acc[f].mul_add(t[f], wslice[f]);
                }
            }
            fft.inverse_from_modes_into(
                &acc,
                iy,
                ix,
                &targets,
                &mut od[(b * co + o) * h * w..(b * co + o + 1) * h * w],
                &mut inv_scratch,
                &pool,
            );
        }
    }
    ctx.recycle_complex(inv_scratch);
    ctx.recycle_complex(acc);
    ctx.recycle_complex(t_all);
}

/// Graph-free eval of the FNO spectral conv (eq. 10): same shapes and
/// bit-identical output to [`spectral_conv2d`], with the output drawn from
/// the [`InferCtx`] buffer pool and no tape recorded.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn spectral_conv2d_infer(
    ctx: &mut InferCtx,
    x: &Tensor,
    w_re: &Tensor,
    w_im: &Tensor,
    k: usize,
) -> Tensor {
    assert_eq!(x.rank(), 4, "spectral_conv2d expects NCHW input");
    let (n, ci, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let co = w_re.dim(1);
    let iy = mode_indices(h, k);
    let ix = mode_indices(w, k);
    let (my, mx) = (iy.len(), ix.len());
    assert_eq!(
        w_re.shape(),
        &[ci, co, my, mx],
        "spectral weight shape mismatch"
    );
    assert_eq!(w_im.shape(), &[ci, co, my, mx]);
    let mut weights = ctx.alloc_complex(w_re.numel());
    to_complex_into(w_re, w_im, &mut weights);
    let mut out = ctx.alloc(&[n, co, h, w]);
    spectral_conv2d_fill(ctx, x, &weights, co, &iy, &ix, &mut out);
    ctx.recycle_complex(weights);
    out
}

/// Generic FNO spectral convolution (eq. 10).
///
/// `x: [N, Ci, h, w]` real; weights `w_re/w_im: [Ci, Co, 2k, 2k]` form the
/// complex per-frequency mixing tensor. Returns `[N, Co, h, w]` (real part of
/// the inverse transform).
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn spectral_conv2d(g: &mut Graph, x: Var, w_re: Var, w_im: Var, k: usize) -> Var {
    let xv = g.value(x);
    let wv = g.value(w_re);
    assert_eq!(xv.rank(), 4, "spectral_conv2d expects NCHW input");
    let (n, ci, h, w) = (xv.dim(0), xv.dim(1), xv.dim(2), xv.dim(3));
    let co = wv.dim(1);
    let iy = mode_indices(h, k);
    let ix = mode_indices(w, k);
    let (my, mx) = (iy.len(), ix.len());
    let nmodes = my * mx;
    assert_eq!(
        wv.shape(),
        &[ci, co, my, mx],
        "spectral weight shape mismatch"
    );
    assert_eq!(g.value(w_im).shape(), &[ci, co, my, mx]);

    let weights = to_complex(g.value(w_re), g.value(w_im)); // [ci, co, modes]
    let mut out = Tensor::zeros(&[n, co, h, w]);
    let mut fill_ctx = InferCtx::new();
    spectral_conv2d_fill(&mut fill_ctx, xv, &weights, co, &iy, &ix, &mut out);
    let iy_b = iy.clone();
    let ix_b = ix.clone();
    g.push(
        out,
        &[x, w_re, w_im],
        Box::new(move |grad, parents, _| {
            let xv = parents[0];
            let weights = to_complex(parents[1], parents[2]);
            let fft = litho_fft::plans(h, w);
            let pool = litho_parallel::global();
            let mut fwd_scratch = vec![Complex32::ZERO; fft.modes_scratch_len()];
            let hw = (h * w) as f32;
            // recompute input modes
            let mut t_all = vec![Complex32::ZERO; n * ci * nmodes];
            input_modes_into(
                &fft,
                xv.as_slice(),
                n * ci,
                &iy_b,
                &ix_b,
                &mut t_all,
                &mut fwd_scratch,
                pool,
            );
            // gradient modes Ĝ[n, o] = gather(F(grad))/hw
            let mut g_all = vec![Complex32::ZERO; n * co * nmodes];
            input_modes_into(
                &fft,
                grad.as_slice(),
                n * co,
                &iy_b,
                &ix_b,
                &mut g_all,
                &mut fwd_scratch,
                pool,
            );
            for v in &mut g_all {
                *v = v.scale(1.0 / hw);
            }
            // weight gradient and input-mode gradient
            let mut dw = vec![Complex32::ZERO; ci * co * nmodes];
            let mut dt = vec![Complex32::ZERO; n * ci * nmodes];
            for b in 0..n {
                for c in 0..ci {
                    let t = &t_all[(b * ci + c) * nmodes..(b * ci + c + 1) * nmodes];
                    for o in 0..co {
                        let gm = &g_all[(b * co + o) * nmodes..(b * co + o + 1) * nmodes];
                        let wslice = &weights[(c * co + o) * nmodes..(c * co + o + 1) * nmodes];
                        let dwslice = &mut dw[(c * co + o) * nmodes..(c * co + o + 1) * nmodes];
                        let dts = &mut dt[(b * ci + c) * nmodes..(b * ci + c + 1) * nmodes];
                        for f in 0..nmodes {
                            dwslice[f] += t[f].conj() * gm[f];
                            dts[f] += wslice[f].conj() * gm[f];
                        }
                    }
                }
            }
            // dx = hw · Re(F⁻¹(scatter(dT)))
            let mut dx = Tensor::zeros(xv.shape());
            let dxd = dx.as_mut_slice();
            let targets = fft.packed_targets(&ix_b);
            let mut inv_scratch = vec![Complex32::ZERO; fft.inverse_modes_scratch_len(&targets)];
            for b in 0..n {
                for c in 0..ci {
                    let plane = &mut dxd[(b * ci + c) * h * w..(b * ci + c + 1) * h * w];
                    fft.inverse_from_modes_into(
                        &dt[(b * ci + c) * nmodes..(b * ci + c + 1) * nmodes],
                        &iy_b,
                        &ix_b,
                        &targets,
                        plane,
                        &mut inv_scratch,
                        pool,
                    );
                    for v in plane.iter_mut() {
                        *v *= hw;
                    }
                }
            }
            let mut dw_re = Tensor::zeros(&[ci, co, my, mx]);
            let mut dw_im = Tensor::zeros(&[ci, co, my, mx]);
            for (i, v) in dw.iter().enumerate() {
                dw_re.as_mut_slice()[i] = v.re;
                dw_im.as_mut_slice()[i] = v.im;
            }
            vec![dx, dw_re, dw_im]
        }),
    )
}

/// Shared forward kernel of the optimized Fourier Unit: writes the full
/// output `[N, C, h, w]` (every element overwritten). Both the graph op and
/// the tape-free eval path route through this; all complex scratch comes
/// from the [`InferCtx`] pool.
fn fourier_unit_fill(
    ctx: &mut InferCtx,
    x: &Tensor,
    wp: &[Complex32],
    wr: &[Complex32],
    iy: &[usize],
    ix: &[usize],
    out: &mut Tensor,
) {
    let (n, h, w) = (x.dim(0), x.dim(2), x.dim(3));
    let c = wp.len();
    let nmodes = iy.len() * ix.len();
    let fft = litho_fft::plans(h, w);
    let pool = ctx.pool().clone();
    let mut t = ctx.alloc_complex(nmodes);
    let mut acc = ctx.alloc_complex(nmodes);
    let mut fwd_scratch = ctx.alloc_complex(fft.modes_scratch_len());
    let targets = fft.packed_targets(ix);
    let mut inv_scratch = ctx.alloc_complex(fft.inverse_modes_scratch_len(&targets));
    let xd = x.as_slice();
    let od = out.as_mut_slice();
    for b in 0..n {
        fft.forward_modes_into(
            &xd[b * h * w..(b + 1) * h * w],
            iy,
            ix,
            &mut t,
            &mut fwd_scratch,
            &pool,
        );
        // lift: B_i = T · wp_i ; mix: Ĉ_o = Σ_i B_i ⊙ wr[i,o]
        for o in 0..c {
            acc.fill(Complex32::ZERO);
            for i in 0..c {
                let lift = wp[i];
                let wslice = &wr[(i * c + o) * nmodes..(i * c + o + 1) * nmodes];
                for f in 0..nmodes {
                    acc[f] = acc[f].mul_add(t[f] * lift, wslice[f]);
                }
            }
            fft.inverse_from_modes_into(
                &acc,
                iy,
                ix,
                &targets,
                &mut od[(b * c + o) * h * w..(b * c + o + 1) * h * w],
                &mut inv_scratch,
                &pool,
            );
        }
    }
    ctx.recycle_complex(inv_scratch);
    ctx.recycle_complex(fwd_scratch);
    ctx.recycle_complex(acc);
    ctx.recycle_complex(t);
}

/// Graph-free eval of the optimized Fourier Unit (eq. 11): same shapes and
/// bit-identical output to [`fourier_unit`], with the output drawn from the
/// [`InferCtx`] buffer pool and no tape recorded.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn fourier_unit_infer(
    ctx: &mut InferCtx,
    x: &Tensor,
    wp_re: &Tensor,
    wp_im: &Tensor,
    wr_re: &Tensor,
    wr_im: &Tensor,
    k: usize,
) -> Tensor {
    assert_eq!(x.rank(), 4, "fourier_unit expects NCHW input");
    assert_eq!(x.dim(1), 1, "fourier_unit expects a single input channel");
    let (n, h, w) = (x.dim(0), x.dim(2), x.dim(3));
    let c = wp_re.numel();
    // to_complex zips the two parts — a silent truncation here would leave
    // tail output channels holding recycled-buffer garbage
    assert_eq!(wp_im.numel(), c, "W_P imaginary length mismatch");
    let iy = mode_indices(h, k);
    let ix = mode_indices(w, k);
    let (my, mx) = (iy.len(), ix.len());
    assert_eq!(wr_re.shape(), &[c, c, my, mx], "W_R shape mismatch");
    assert_eq!(wr_im.shape(), &[c, c, my, mx]);
    let mut wp = ctx.alloc_complex(c);
    to_complex_into(wp_re, wp_im, &mut wp);
    let mut wr = ctx.alloc_complex(wr_re.numel());
    to_complex_into(wr_re, wr_im, &mut wr);
    let mut out = ctx.alloc(&[n, c, h, w]);
    fourier_unit_fill(ctx, x, &wp, &wr, &iy, &ix, &mut out);
    ctx.recycle_complex(wr);
    ctx.recycle_complex(wp);
    out
}

/// The paper's optimized Fourier Unit (eq. 11).
///
/// `x: [N, 1, h, w]` real; `wp_re/wp_im: [C]` is the frequency-constant
/// channel lift `W_P`; `wr_re/wr_im: [C, C, 2k, 2k]` is the per-frequency
/// mixing `W_R`. Returns `[N, C, h, w]`.
///
/// One forward FFT per image (instead of one per channel) plus `C` inverse
/// FFTs — the computation-flow match to the SOCS litho model of Figure 2.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn fourier_unit(
    g: &mut Graph,
    x: Var,
    wp_re: Var,
    wp_im: Var,
    wr_re: Var,
    wr_im: Var,
    k: usize,
) -> Var {
    let xv = g.value(x);
    assert_eq!(xv.rank(), 4, "fourier_unit expects NCHW input");
    assert_eq!(xv.dim(1), 1, "fourier_unit expects a single input channel");
    let (n, h, w) = (xv.dim(0), xv.dim(2), xv.dim(3));
    let c = g.value(wp_re).numel();
    assert_eq!(g.value(wp_im).numel(), c, "W_P imaginary length mismatch");
    let iy = mode_indices(h, k);
    let ix = mode_indices(w, k);
    let (my, mx) = (iy.len(), ix.len());
    let nmodes = my * mx;
    assert_eq!(
        g.value(wr_re).shape(),
        &[c, c, my, mx],
        "W_R shape mismatch"
    );
    assert_eq!(g.value(wr_im).shape(), &[c, c, my, mx]);

    let wp = to_complex(g.value(wp_re), g.value(wp_im));
    let wr = to_complex(g.value(wr_re), g.value(wr_im));

    let mut out = Tensor::zeros(&[n, c, h, w]);
    let mut fill_ctx = InferCtx::new();
    fourier_unit_fill(&mut fill_ctx, xv, &wp, &wr, &iy, &ix, &mut out);

    let iy_b = iy.clone();
    let ix_b = ix.clone();
    g.push(
        out,
        &[x, wp_re, wp_im, wr_re, wr_im],
        Box::new(move |grad, parents, _| {
            let xv = parents[0];
            let wp = to_complex(parents[1], parents[2]);
            let wr = to_complex(parents[3], parents[4]);
            let fft = litho_fft::plans(h, w);
            let pool = litho_parallel::global();
            let mut fwd_scratch = vec![Complex32::ZERO; fft.modes_scratch_len()];
            let targets = fft.packed_targets(&ix_b);
            let mut inv_scratch = vec![Complex32::ZERO; fft.inverse_modes_scratch_len(&targets)];
            let hw = (h * w) as f32;
            let xd = xv.as_slice();
            let gd = grad.as_slice();
            let mut t = vec![Complex32::ZERO; nmodes];
            let mut dwp = vec![Complex32::ZERO; c];
            let mut dwr = vec![Complex32::ZERO; c * c * nmodes];
            let mut dx = Tensor::zeros(xv.shape());
            let dxd = dx.as_mut_slice();
            for b in 0..n {
                // recompute T and B
                fft.forward_modes_into(
                    &xd[b * h * w..(b + 1) * h * w],
                    &iy_b,
                    &ix_b,
                    &mut t,
                    &mut fwd_scratch,
                    pool,
                );
                // Ĝ_o
                let mut g_modes = vec![Complex32::ZERO; c * nmodes];
                input_modes_into(
                    &fft,
                    &gd[b * c * h * w..(b + 1) * c * h * w],
                    c,
                    &iy_b,
                    &ix_b,
                    &mut g_modes,
                    &mut fwd_scratch,
                    pool,
                );
                for v in &mut g_modes {
                    *v = v.scale(1.0 / hw);
                }
                // dwr[i,o,f] += conj(B_i[f]) Ĝ_o[f];   B_i = T·wp_i
                // dB_i[f]    = Σ_o Ĝ_o[f] conj(wr[i,o,f])
                let mut dt = vec![Complex32::ZERO; nmodes];
                for i in 0..c {
                    let lift = wp[i];
                    let mut db = vec![Complex32::ZERO; nmodes];
                    for o in 0..c {
                        let gm = &g_modes[o * nmodes..(o + 1) * nmodes];
                        let wslice = &wr[(i * c + o) * nmodes..(i * c + o + 1) * nmodes];
                        let dwslice = &mut dwr[(i * c + o) * nmodes..(i * c + o + 1) * nmodes];
                        for f in 0..nmodes {
                            let bi = t[f] * lift;
                            dwslice[f] += bi.conj() * gm[f];
                            db[f] += wslice[f].conj() * gm[f];
                        }
                    }
                    // dwp_i += Σ_f conj(T[f])·dB_i[f];  dT += conj(wp_i)·dB_i
                    let mut acc = Complex32::ZERO;
                    for f in 0..nmodes {
                        acc += t[f].conj() * db[f];
                        dt[f] += lift.conj() * db[f];
                    }
                    dwp[i] += acc;
                }
                // dx = hw · Re(F⁻¹(scatter(dT)))
                let plane = &mut dxd[b * h * w..(b + 1) * h * w];
                fft.inverse_from_modes_into(
                    &dt,
                    &iy_b,
                    &ix_b,
                    &targets,
                    plane,
                    &mut inv_scratch,
                    pool,
                );
                for v in plane.iter_mut() {
                    *v *= hw;
                }
            }
            let mut dwp_re = Tensor::zeros(&[c]);
            let mut dwp_im = Tensor::zeros(&[c]);
            for (i, v) in dwp.iter().enumerate() {
                dwp_re.as_mut_slice()[i] = v.re;
                dwp_im.as_mut_slice()[i] = v.im;
            }
            let mut dwr_re = Tensor::zeros(&[c, c, my, mx]);
            let mut dwr_im = Tensor::zeros(&[c, c, my, mx]);
            for (i, v) in dwr.iter().enumerate() {
                dwr_re.as_mut_slice()[i] = v.re;
                dwr_im.as_mut_slice()[i] = v.im;
            }
            vec![dx, dwp_re, dwp_im, dwr_re, dwr_im]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use litho_nn::{ops, Param};

    fn ramp(shape: &[usize], s: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n).map(|i| ((i * 7 % 13) as f32 - 6.0) * s).collect(),
            shape,
        )
    }

    #[test]
    fn mode_indices_cover_corners() {
        assert_eq!(mode_indices(8, 2), vec![0, 1, 6, 7]);
        assert_eq!(mode_indices(8, 4), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        // clamped at n/2
        assert_eq!(mode_indices(8, 10), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(mode_indices(4, 1), vec![0, 3]);
    }

    #[test]
    fn mode_indices_never_duplicate_bins() {
        // regression: n == 1 used to emit [0, 0] (clamp floored k at 1, then
        // [0,k) and [n−k,n) both named bin 0), double-counting DC and breaking
        // the weight-shape assert downstream
        assert_eq!(mode_indices(1, 1), vec![0]);
        assert_eq!(mode_indices(1, 5), vec![0]);
        for n in 1..10usize {
            for k in 1..6usize {
                let idx = mode_indices(n, k);
                let mut dedup = idx.clone();
                dedup.sort_unstable();
                dedup.dedup();
                assert_eq!(idx.len(), dedup.len(), "duplicate bins for n={n} k={k}");
                assert!(idx.iter().all(|&i| i < n), "out of range for n={n} k={k}");
            }
        }
    }

    #[test]
    fn degenerate_single_row_input_runs() {
        // regression: a 1×w input used to trip the weight-shape assert
        // because the duplicated row-axis bin inflated the mode count
        let w = 4;
        let mut g = Graph::new();
        let x0 = ramp(&[1, 1, 1, w], 0.2);
        let x = g.input(x0.clone());
        let wr = g.input(Tensor::ones(&[1, 1, 1, w]));
        let wi = g.input(Tensor::zeros(&[1, 1, 1, w]));
        // full spectrum + identity weights must reproduce the input
        let y = spectral_conv2d(&mut g, x, wr, wi, w / 2);
        for (a, b) in g.value(y).as_slice().iter().zip(x0.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn identity_weights_reproduce_input() {
        // full-spectrum 1->1 spectral conv with W == 1 must be the identity
        let h = 8;
        let mut g = Graph::new();
        let x0 = ramp(&[1, 1, h, h], 0.2);
        let x = g.input(x0.clone());
        let wr = g.input(Tensor::ones(&[1, 1, h, h]));
        let wi = g.input(Tensor::zeros(&[1, 1, h, h]));
        let y = spectral_conv2d(&mut g, x, wr, wi, h / 2);
        let out = g.value(y);
        for (a, b) in out.as_slice().iter().zip(x0.as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn truncation_kills_high_frequencies() {
        // checkerboard = Nyquist frequency; k=1 keeps only near-DC modes
        let h = 8;
        let mut img = Tensor::zeros(&[1, 1, h, h]);
        for y in 0..h {
            for x in 0..h {
                img.set(&[0, 0, y, x], if (x + y) % 2 == 0 { 1.0 } else { -1.0 });
            }
        }
        let mut g = Graph::new();
        let x = g.input(img);
        let wr = g.input(Tensor::ones(&[1, 1, 2, 2]));
        let wi = g.input(Tensor::zeros(&[1, 1, 2, 2]));
        let y = spectral_conv2d(&mut g, x, wr, wi, 1);
        assert!(g.value(y).as_slice().iter().all(|v| v.abs() < 1e-4));
        // constant image passes through (DC is kept)
        let mut g2 = Graph::new();
        let x2 = g2.input(Tensor::ones(&[1, 1, h, h]));
        let wr2 = g2.input(Tensor::ones(&[1, 1, 2, 2]));
        let wi2 = g2.input(Tensor::zeros(&[1, 1, 2, 2]));
        let y2 = spectral_conv2d(&mut g2, x2, wr2, wi2, 1);
        assert!(g2
            .value(y2)
            .as_slice()
            .iter()
            .all(|v| (v - 1.0).abs() < 1e-4));
    }

    #[test]
    fn fourier_unit_equals_spectral_conv_when_factorable() {
        // with wp = [1] and C = 1, the optimized unit equals a 1->1 spectral conv
        let h = 8;
        let k = 2;
        let x0 = ramp(&[2, 1, h, h], 0.15);
        let wrr = ramp(&[1, 1, 2 * k, 2 * k], 0.3);
        let wri = ramp(&[1, 1, 2 * k, 2 * k], 0.21);

        let mut g1 = Graph::new();
        let x1 = g1.input(x0.clone());
        let a = g1.input(wrr.clone());
        let bimag = g1.input(wri.clone());
        let y1 = spectral_conv2d(&mut g1, x1, a, bimag, k);

        let mut g2 = Graph::new();
        let x2 = g2.input(x0);
        let pr = g2.input(Tensor::ones(&[1]));
        let pi = g2.input(Tensor::zeros(&[1]));
        let rr = g2.input(wrr);
        let ri = g2.input(wri);
        let y2 = fourier_unit(&mut g2, x2, pr, pi, rr, ri, k);

        for (a, b) in g1.value(y1).as_slice().iter().zip(g2.value(y2).as_slice()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    fn grad_check(
        loss_of: impl Fn(&Tensor) -> f32,
        init: &Tensor,
        analytic: &Tensor,
        tol: f32,
        label: &str,
    ) {
        let eps = 1e-2f32;
        for i in 0..init.numel() {
            let mut plus = init.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = init.clone();
            minus.as_mut_slice()[i] -= eps;
            let num = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            let ana = analytic.as_slice()[i];
            assert!(
                (num - ana).abs() <= tol * (1.0 + num.abs()),
                "{label} elem {i}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn fourier_unit_gradients_match_finite_difference() {
        let (h, k, c) = (8usize, 2usize, 2usize);
        let x0 = ramp(&[1, 1, h, h], 0.2);
        let wp_re0 = ramp(&[c], 0.4);
        let wp_im0 = ramp(&[c], 0.25);
        let wr_re0 = ramp(&[c, c, 2 * k, 2 * k], 0.12);
        let wr_im0 = ramp(&[c, c, 2 * k, 2 * k], 0.08);
        let target = Tensor::zeros(&[1, c, h, h]);

        let loss_with = |xt: &Tensor, pr: &Tensor, pi: &Tensor, rr: &Tensor, ri: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(xt.clone());
            let a = g.input(pr.clone());
            let b = g.input(pi.clone());
            let cc = g.input(rr.clone());
            let d = g.input(ri.clone());
            let y = fourier_unit(&mut g, x, a, b, cc, d, k);
            let l = ops::mse_loss(&mut g, y, &target);
            g.value(l).as_slice()[0]
        };

        let px = Param::new(x0.clone(), "x");
        let ppr = Param::new(wp_re0.clone(), "wp_re");
        let ppi = Param::new(wp_im0.clone(), "wp_im");
        let prr = Param::new(wr_re0.clone(), "wr_re");
        let pri = Param::new(wr_im0.clone(), "wr_im");
        let mut g = Graph::new();
        let x = g.param(&px);
        let a = g.param(&ppr);
        let b = g.param(&ppi);
        let cc = g.param(&prr);
        let d = g.param(&pri);
        let y = fourier_unit(&mut g, x, a, b, cc, d, k);
        let l = ops::mse_loss(&mut g, y, &target);
        g.backward(l);

        grad_check(
            |t| loss_with(t, &wp_re0, &wp_im0, &wr_re0, &wr_im0),
            &x0,
            &px.grad(),
            5e-2,
            "x",
        );
        grad_check(
            |t| loss_with(&x0, t, &wp_im0, &wr_re0, &wr_im0),
            &wp_re0,
            &ppr.grad(),
            5e-2,
            "wp_re",
        );
        grad_check(
            |t| loss_with(&x0, &wp_re0, t, &wr_re0, &wr_im0),
            &wp_im0,
            &ppi.grad(),
            5e-2,
            "wp_im",
        );
        grad_check(
            |t| loss_with(&x0, &wp_re0, &wp_im0, t, &wr_im0),
            &wr_re0,
            &prr.grad(),
            5e-2,
            "wr_re",
        );
        grad_check(
            |t| loss_with(&x0, &wp_re0, &wp_im0, &wr_re0, t),
            &wr_im0,
            &pri.grad(),
            5e-2,
            "wr_im",
        );
    }

    #[test]
    fn spectral_conv_gradients_match_finite_difference() {
        let (h, k, ci, co) = (8usize, 2usize, 2usize, 2usize);
        let x0 = ramp(&[1, ci, h, h], 0.2);
        let wr0 = ramp(&[ci, co, 2 * k, 2 * k], 0.1);
        let wi0 = ramp(&[ci, co, 2 * k, 2 * k], 0.07);
        let target = Tensor::zeros(&[1, co, h, h]);

        let loss_with = |xt: &Tensor, rr: &Tensor, ri: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(xt.clone());
            let a = g.input(rr.clone());
            let b = g.input(ri.clone());
            let y = spectral_conv2d(&mut g, x, a, b, k);
            let l = ops::mse_loss(&mut g, y, &target);
            g.value(l).as_slice()[0]
        };

        let px = Param::new(x0.clone(), "x");
        let pr = Param::new(wr0.clone(), "w_re");
        let pi = Param::new(wi0.clone(), "w_im");
        let mut g = Graph::new();
        let x = g.param(&px);
        let a = g.param(&pr);
        let b = g.param(&pi);
        let y = spectral_conv2d(&mut g, x, a, b, k);
        let l = ops::mse_loss(&mut g, y, &target);
        g.backward(l);

        grad_check(|t| loss_with(t, &wr0, &wi0), &x0, &px.grad(), 5e-2, "x");
        grad_check(|t| loss_with(&x0, t, &wi0), &wr0, &pr.grad(), 5e-2, "w_re");
        grad_check(|t| loss_with(&x0, &wr0, t), &wi0, &pi.grad(), 5e-2, "w_im");
    }

    #[test]
    fn output_is_linear_in_input() {
        let (h, k) = (8usize, 2usize);
        let x0 = ramp(&[1, 1, h, h], 0.3);
        let wr0 = ramp(&[1, 2, 2 * k, 2 * k], 0.2);
        let wi0 = ramp(&[1, 2, 2 * k, 2 * k], 0.15);
        let run = |xt: &Tensor| {
            let mut g = Graph::new();
            let x = g.input(xt.clone());
            let a = g.input(wr0.clone());
            let b = g.input(wi0.clone());
            let y = spectral_conv2d(&mut g, x, a, b, k);
            g.value(y).clone()
        };
        let y1 = run(&x0);
        let y2 = run(&x0.scale(2.5));
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((2.5 * a - b).abs() < 1e-3);
        }
    }
}
