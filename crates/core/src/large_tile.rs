//! Large-tile simulation scheme (§3.2, Figure 5).
//!
//! A DOINN trained on `S×S` tiles degrades on larger inputs because the
//! Fourier Unit's truncated-mode weights are calibrated to the training
//! tile's frequency resolution. The paper's fix: run the **GP path** on
//! half-overlapping `S×S` windows and stitch only each window's *core*
//! region (safe from boundary effects, per the optical-diameter argument),
//! while the purely local LP/IR convolutions run on the full tile unchanged.
//!
//! Inputs may be any rectangular `[1, 1, H, W]` with `H, W ≥ S`: dimensions
//! that are not multiples of `S/2` are **reflect-padded** (mirror without
//! the edge row, bottom/right only — see
//! [`litho_tensor::reflect_pad_spatial`]) up to the window grid and the
//! output is cropped back, so already-aligned inputs take the exact same
//! code path as before and unaligned ones differ only by the padded band.
//!
//! The window fan-out is embarrassingly parallel — every window runs an
//! independent GP forward and its core region lands in a disjoint part of
//! the stitched feature map — so it is distributed over the `litho-parallel`
//! pool (one work item per window, results stitched in window order, output
//! bit-identical for any `LITHO_THREADS` when the model is in eval mode —
//! see [`LargeTileSimulator::simulate`] for the batch-norm caveat). The
//! serial [`LargeTileSimulator::simulate_in_ctx`] variant runs the same
//! window schedule on one caller-owned [`InferCtx`] and is bit-identical to
//! the pooled path — it is the per-super-tile kernel of the full-chip
//! streaming engine (`crate::streaming`), where the parallelism lives one
//! level up (tiles, not windows).

use crate::model::Doinn;
use litho_nn::{ops, InferCtx, Module};
use litho_tensor::{crop_spatial, crop_spatial_into, reflect_pad_spatial, Tensor};

/// Applies a trained [`Doinn`] to tiles larger than its training size using
/// the half-overlap core-stitching scheme.
#[derive(Debug)]
pub struct LargeTileSimulator<'a> {
    model: &'a Doinn,
    train_size: usize,
}

impl<'a> LargeTileSimulator<'a> {
    /// Wraps a model trained on `train_size × train_size` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `train_size` is not divisible by `2 × pool` (the scheme
    /// needs half-tiles aligned to the pooled grid).
    pub fn new(model: &'a Doinn, train_size: usize) -> Self {
        let pool = model.config().pool;
        assert!(
            train_size % (2 * pool) == 0,
            "train size must be a multiple of 2·pool"
        );
        Self { model, train_size }
    }

    /// The training tile edge this simulator windows with.
    #[must_use]
    pub fn train_size(&self) -> usize {
        self.train_size
    }

    /// Simulates a `[1, 1, H, W]` mask with `H, W ≥ train_size`. Returns
    /// the Tanh contour prediction of shape `[1, 1, H, W]`; unaligned
    /// inputs are reflect-padded to the window grid and cropped back (see
    /// the module docs).
    ///
    /// Deterministic (bit-identical for any `LITHO_THREADS`) **provided the
    /// model is in eval mode**: in training mode batch-norm layers fold
    /// running statistics per forward pass, and with windows running
    /// concurrently the fold order is scheduling-dependent. Call
    /// [`litho_nn::Module::set_training`]`(false)` first — inference is the
    /// only intended use of this scheme anyway.
    ///
    /// # Panics
    ///
    /// Panics if the input shape violates the constraints above.
    pub fn simulate(&self, mask: &Tensor) -> Tensor {
        self.simulate_with_pool(mask, litho_parallel::global())
    }

    /// [`LargeTileSimulator::simulate`] with an explicit `pool` for the
    /// window fan-out (the public entry point uses the process-wide pool).
    pub fn simulate_with_pool(&self, mask: &Tensor, wpool: &litho_parallel::Pool) -> Tensor {
        let (h, w) = self.validate(mask);
        match self.pad_to_grid(mask) {
            Some(padded) => {
                let out = self.simulate_aligned_with_pool(&padded, wpool);
                crop_spatial(&out, 0, 0, h, w)
            }
            None => self.simulate_aligned_with_pool(mask, wpool),
        }
    }

    /// Serial [`LargeTileSimulator::simulate`] on one caller-owned context:
    /// the same window schedule, the same FP order, bit-identical output —
    /// but every window runs on `ctx`, so a warm context makes the whole
    /// simulation allocation-free modulo the stitched map and the result.
    /// This is the kernel the full-chip streaming engine runs per
    /// super-tile, with `CtxBank` contexts persisting across tiles.
    ///
    /// # Panics
    ///
    /// Panics on the [`LargeTileSimulator::simulate`] shape constraints.
    pub fn simulate_in_ctx(&self, ctx: &mut InferCtx, mask: &Tensor) -> Tensor {
        let (h, w) = self.validate(mask);
        match self.pad_to_grid(mask) {
            Some(padded) => {
                let out = self.simulate_aligned_in_ctx(ctx, &padded);
                let mut cropped = ctx.alloc(&[1, 1, h, w]);
                crop_spatial_into(&out, 0, 0, &mut cropped);
                ctx.recycle(out);
                cropped
            }
            None => self.simulate_aligned_in_ctx(ctx, mask),
        }
    }

    /// Shape validation shared by every entry point; returns `(H, W)`.
    fn validate(&self, mask: &Tensor) -> (usize, usize) {
        assert_eq!(mask.rank(), 4, "expects NCHW input");
        assert_eq!(mask.dim(0), 1, "large-tile simulation is single-image");
        assert_eq!(mask.dim(1), 1, "expects a 1-channel mask");
        let (h, w) = (mask.dim(2), mask.dim(3));
        let s = self.train_size;
        assert!(h >= s && w >= s, "input smaller than training tile");
        (h, w)
    }

    /// Reflect-pads bottom/right up to the next multiple of `train_size/2`,
    /// or `None` for already-aligned inputs (which then share the exact
    /// unpadded code path).
    fn pad_to_grid(&self, mask: &Tensor) -> Option<Tensor> {
        let stride = self.train_size / 2;
        let (h, w) = (mask.dim(2), mask.dim(3));
        let (hp, wp) = (h.next_multiple_of(stride), w.next_multiple_of(stride));
        // pad < stride ≤ train_size/2 ≤ H, so reflection always has room
        (hp != h || wp != w).then(|| reflect_pad_spatial(mask, 0, hp - h, 0, wp - w))
    }

    /// GP forward of one `S×S` window at tile coords `(ty, tx)`; returns
    /// the `[1, C, p, p]` pooled feature map (caller recycles).
    fn window_feature(&self, ctx: &mut InferCtx, mask: &Tensor, ty: usize, tx: usize) -> Tensor {
        let s = self.train_size;
        let stride = s / 2;
        // crop into a recycled buffer so the s×s bucket cycles too
        let mut window = ctx.alloc(&[1, 1, s, s]);
        crop_spatial_into(mask, ty * stride, tx * stride, &mut window);
        let pooled = ops::avg_pool2d_infer(ctx, &window, self.model.config().pool);
        ctx.recycle(window);
        self.model.gp_on_pooled_infer(ctx, pooled)
    }

    /// Copies the window's core region into the stitched map. Core bounds
    /// in pooled window coords; edge windows extend to the tile boundary so
    /// every output pixel is covered exactly once.
    fn stitch_core(
        &self,
        stitched: &mut Tensor,
        feat: &Tensor,
        (ty, tx): (usize, usize),
        (n_ty, n_tx): (usize, usize),
    ) {
        let pool = self.model.config().pool;
        let p = self.train_size / pool; // per-window pooled size
        let stride = self.train_size / 2;
        let c = stitched.dim(1);
        let (cy0, cy1) = core_span(ty, n_ty, p);
        let (cx0, cx1) = core_span(tx, n_tx, p);
        let oy = ty * stride / pool;
        let ox = tx * stride / pool;
        for ch in 0..c {
            for wy in cy0..cy1 {
                for wx in cx0..cx1 {
                    stitched.set(&[0, ch, oy + wy, ox + wx], feat.get(&[0, ch, wy, wx]));
                }
            }
        }
    }

    /// Window-grid dimensions `(n_ty, n_tx)` for an aligned `H×W` input.
    fn grid(&self, h: usize, w: usize) -> (usize, usize) {
        let s = self.train_size;
        let stride = s / 2;
        ((h - s) / stride + 1, (w - s) / stride + 1)
    }

    /// The aligned-input core: window fan-out over `wpool`, stitch, LP,
    /// reconstruct. `mask` dims must be multiples of `train_size/2`.
    fn simulate_aligned_with_pool(&self, mask: &Tensor, wpool: &litho_parallel::Pool) -> Tensor {
        let (h, w) = (mask.dim(2), mask.dim(3));
        let pool = self.model.config().pool;
        let c = self.model.config().gp_channels;
        let (n_ty, n_tx) = self.grid(h, w);

        // 1. GP path on half-overlapped windows, fanned out one window per
        //    work item and stitched in window order. Each worker *slot* owns
        //    one tape-free InferCtx that lives across all rounds, so after
        //    the first round every window draws its activations from the
        //    slot's recycled buffers — zero allocations for the long tail of
        //    a big mask's thousands of windows. Windows are processed in
        //    rounds of one per worker so peak memory holds O(threads)
        //    feature maps, not O(windows). Stitched regions are disjoint, so
        //    neither the fan-out nor the rounding can change the result.
        let total = n_ty * n_tx;
        let round = wpool.threads();
        let mut stitched = Tensor::zeros(&[1, c, h / pool, w / pool]);
        let mut workers: Vec<(InferCtx, Option<Tensor>)> = (0..round)
            .map(|_| (InferCtx::with_pool(wpool), None))
            .collect();
        let mut start = 0;
        while start < total {
            let count = round.min(total - start);
            wpool.par_chunks_mut(&mut workers[..count], 1, 1, |i, slot| {
                let (ctx, out) = &mut slot[0];
                let ti = start + i;
                *out = Some(self.window_feature(ctx, mask, ti / n_tx, ti % n_tx));
            });
            for (off, (ctx, out)) in workers[..count].iter_mut().enumerate() {
                let feat = out.take().expect("window feature filled");
                let ti = start + off;
                self.stitch_core(&mut stitched, &feat, (ti / n_tx, ti % n_tx), (n_ty, n_tx));
                ctx.recycle(feat);
            }
            start += count;
        }

        // 2. LP on the full tile + IR reconstruction from the stitched GP,
        //    tape-free on one context (reuse a window worker's warm pool).
        let mut ctx = workers
            .into_iter()
            .next()
            .map_or_else(|| InferCtx::with_pool(wpool), |(ctx, _)| ctx);
        let lp_feats = self.model.lp_features_infer(&mut ctx, mask);
        self.model.reconstruct_infer(&mut ctx, stitched, lp_feats)
    }

    /// Serial aligned-input core on one context: identical window schedule
    /// and FP order to [`LargeTileSimulator::simulate_aligned_with_pool`],
    /// just no fan-out.
    fn simulate_aligned_in_ctx(&self, ctx: &mut InferCtx, mask: &Tensor) -> Tensor {
        let (h, w) = (mask.dim(2), mask.dim(3));
        let pool = self.model.config().pool;
        let c = self.model.config().gp_channels;
        let (n_ty, n_tx) = self.grid(h, w);
        let mut stitched = Tensor::zeros(&[1, c, h / pool, w / pool]);
        for ti in 0..n_ty * n_tx {
            let feat = self.window_feature(ctx, mask, ti / n_tx, ti % n_tx);
            self.stitch_core(&mut stitched, &feat, (ti / n_tx, ti % n_tx), (n_ty, n_tx));
            ctx.recycle(feat);
        }
        let lp_feats = self.model.lp_features_infer(ctx, mask);
        self.model.reconstruct_infer(ctx, stitched, lp_feats)
    }

    /// Naive baseline: feed the large tile directly through the network
    /// (the "DOINN" row of Table 4 that shows the quality drop).
    pub fn simulate_naive(&self, mask: &Tensor) -> Tensor {
        self.model.infer(&mut InferCtx::new(), mask.clone())
    }
}

/// Core half-open span of window `t` of `n` along one axis, in pooled
/// window coords of size `p`: interior windows keep the middle half, edge
/// windows extend to the boundary.
fn core_span(t: usize, n: usize, p: usize) -> (usize, usize) {
    let lo = if t == 0 { 0 } else { p / 4 };
    let hi = if t == n - 1 { p } else { 3 * p / 4 };
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DoinnConfig;
    use litho_tensor::init::seeded_rng;

    #[test]
    fn output_shape_matches_large_input() {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = Tensor::zeros(&[1, 1, 64, 64]);
        let out = sim.simulate(&mask);
        assert_eq!(out.shape(), &[1, 1, 64, 64]);
        let naive = sim.simulate_naive(&mask);
        assert_eq!(naive.shape(), &[1, 1, 64, 64]);
    }

    #[test]
    fn equals_direct_forward_when_tile_matches_train_size() {
        // with L == S there is a single window covering everything, so the
        // stitched GP equals the direct GP and outputs must agree
        let mut rng = seeded_rng(2);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng);
        let a = sim.simulate(&mask);
        let b = sim.simulate_naive(&mask);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn covers_every_output_pixel() {
        // stitched GP must leave no zero-holes for a constant input
        // (constant mask -> every window produces identical features)
        let mut rng = seeded_rng(3);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = Tensor::ones(&[1, 1, 96, 96]);
        let out = sim.simulate(&mask);
        // interior must be translation invariant: compare two interior pixels
        let a = out.get(&[0, 0, 40, 40]);
        let b = out.get(&[0, 0, 56, 56]);
        assert!((a - b).abs() < 1e-3, "interior not uniform: {a} vs {b}");
    }

    #[test]
    fn window_fanout_bit_identical_across_pool_sizes() {
        let mut rng = seeded_rng(5);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 96, 96], 0.5, &mut rng);
        let want = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(1));
        for threads in [2usize, 4] {
            let got = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(threads));
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "{threads}-thread stitching must be bit-identical"
            );
        }
    }

    #[test]
    fn rectangular_inputs_are_supported() {
        let mut rng = seeded_rng(6);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 48, 80], 0.5, &mut rng);
        let out = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(2));
        assert_eq!(out.shape(), &[1, 1, 48, 80]);
        assert!(out.all_finite());
    }

    #[test]
    fn aligned_inputs_bypass_padding_bit_identically() {
        // the padding satellite's regression: on an already-aligned input
        // the public entry point must be bit-identical to the aligned core
        // (i.e. the padding layer is a true no-op, not a pad+crop epicycle)
        let mut rng = seeded_rng(7);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 64, 64], 0.5, &mut rng);
        let pool = litho_parallel::Pool::new(2);
        let public = sim.simulate_with_pool(&mask, &pool);
        let aligned = sim.simulate_aligned_with_pool(&mask, &pool);
        assert_eq!(public.as_slice(), aligned.as_slice());
    }

    #[test]
    fn unaligned_inputs_equal_manual_pad_then_crop() {
        // 40 is not a multiple of 16: the simulator must reflect-pad to
        // 48×48, simulate, and crop — verified against doing that by hand
        let mut rng = seeded_rng(8);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 40, 40], 0.5, &mut rng);
        let pool = litho_parallel::Pool::new(2);
        let out = sim.simulate_with_pool(&mask, &pool);
        assert_eq!(out.shape(), &[1, 1, 40, 40]);
        let padded = reflect_pad_spatial(&mask, 0, 8, 0, 8);
        let manual = crop_spatial(&sim.simulate_with_pool(&padded, &pool), 0, 0, 40, 40);
        assert_eq!(out.as_slice(), manual.as_slice());
    }

    #[test]
    fn in_ctx_path_matches_pooled_path_bit_identically() {
        let mut rng = seeded_rng(9);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        // rectangular and unaligned on one axis to cover pad + crop too
        let mask = litho_tensor::init::randn(&[1, 1, 48, 72], 0.5, &mut rng);
        let want = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(3));
        let mut ctx = InferCtx::new();
        let got = sim.simulate_in_ctx(&mut ctx, &mask);
        assert_eq!(want.as_slice(), got.as_slice());
        // and a second run on the now-warm context stays identical
        let again = sim.simulate_in_ctx(&mut ctx, &mask);
        assert_eq!(want.as_slice(), again.as_slice());
    }

    #[test]
    #[should_panic(expected = "input smaller than training tile")]
    fn rejects_inputs_below_train_size() {
        let mut rng = seeded_rng(4);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let sim = LargeTileSimulator::new(&model, 32);
        let _ = sim.simulate(&Tensor::zeros(&[1, 1, 24, 24]));
    }
}
