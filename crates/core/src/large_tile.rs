//! Large-tile simulation scheme (§3.2, Figure 5).
//!
//! A DOINN trained on `S×S` tiles degrades on larger inputs because the
//! Fourier Unit's truncated-mode weights are calibrated to the training
//! tile's frequency resolution. The paper's fix: run the **GP path** on
//! half-overlapping `S×S` windows and stitch only each window's *core*
//! region (safe from boundary effects, per the optical-diameter argument),
//! while the purely local LP/IR convolutions run on the full tile unchanged.
//!
//! The window fan-out is embarrassingly parallel — every window runs an
//! independent GP forward and its core region lands in a disjoint part of
//! the stitched feature map — so it is distributed over the `litho-parallel`
//! pool (one work item per window, results stitched in window order, output
//! bit-identical for any `LITHO_THREADS` when the model is in eval mode —
//! see [`LargeTileSimulator::simulate`] for the batch-norm caveat).

use crate::model::Doinn;
use litho_nn::{ops, InferCtx, Module};
use litho_tensor::{crop_spatial_into, Tensor};

/// Applies a trained [`Doinn`] to tiles larger than its training size using
/// the half-overlap core-stitching scheme.
#[derive(Debug)]
pub struct LargeTileSimulator<'a> {
    model: &'a Doinn,
    train_size: usize,
}

impl<'a> LargeTileSimulator<'a> {
    /// Wraps a model trained on `train_size × train_size` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `train_size` is not divisible by `2 × pool` (the scheme
    /// needs half-tiles aligned to the pooled grid).
    pub fn new(model: &'a Doinn, train_size: usize) -> Self {
        let pool = model.config().pool;
        assert!(
            train_size % (2 * pool) == 0,
            "train size must be a multiple of 2·pool"
        );
        Self { model, train_size }
    }

    /// Simulates a `[1, 1, L, L]` mask with `L ≥ train_size` and
    /// `L` a multiple of `train_size/2`. Returns the Tanh contour prediction
    /// of shape `[1, 1, L, L]`.
    ///
    /// Deterministic (bit-identical for any `LITHO_THREADS`) **provided the
    /// model is in eval mode**: in training mode batch-norm layers fold
    /// running statistics per forward pass, and with windows running
    /// concurrently the fold order is scheduling-dependent. Call
    /// [`litho_nn::Module::set_training`]`(false)` first — inference is the
    /// only intended use of this scheme anyway.
    ///
    /// # Panics
    ///
    /// Panics if the input shape violates the constraints above.
    pub fn simulate(&self, mask: &Tensor) -> Tensor {
        self.simulate_with_pool(mask, litho_parallel::global())
    }

    /// [`LargeTileSimulator::simulate`] with an explicit `pool` for the
    /// window fan-out (the public entry point uses the process-wide pool).
    pub fn simulate_with_pool(&self, mask: &Tensor, wpool: &litho_parallel::Pool) -> Tensor {
        assert_eq!(mask.rank(), 4, "expects NCHW input");
        assert_eq!(mask.dim(0), 1, "large-tile simulation is single-image");
        assert_eq!(mask.dim(1), 1, "expects a 1-channel mask");
        let l = mask.dim(2);
        assert_eq!(mask.dim(3), l, "expects a square tile");
        let s = self.train_size;
        assert!(l >= s, "input smaller than training tile");
        assert!(
            l % (s / 2) == 0,
            "input size must be a multiple of half the training tile"
        );
        let pool = self.model.config().pool;
        let c = self.model.config().gp_channels;
        let lp_pooled = l / pool; // stitched GP feature resolution
        let p = s / pool; // per-window pooled size
        let stride = s / 2;
        let n_tiles = (l - s) / stride + 1;

        // 1. GP path on half-overlapped windows, fanned out one window per
        //    work item and stitched in window order. Each worker *slot* owns
        //    one tape-free InferCtx that lives across all rounds, so after
        //    the first round every window draws its activations from the
        //    slot's recycled buffers — zero allocations for the long tail of
        //    a big mask's thousands of windows. Windows are processed in
        //    rounds of one per worker so peak memory holds O(threads)
        //    feature maps, not O(windows). Stitched regions are disjoint, so
        //    neither the fan-out nor the rounding can change the result.
        let total = n_tiles * n_tiles;
        let round = wpool.threads();
        let mut stitched = Tensor::zeros(&[1, c, lp_pooled, lp_pooled]);
        let mut workers: Vec<(InferCtx, Option<Tensor>)> = (0..round)
            .map(|_| (InferCtx::with_pool(wpool), None))
            .collect();
        let mut start = 0;
        while start < total {
            let count = round.min(total - start);
            wpool.par_chunks_mut(&mut workers[..count], 1, 1, |i, slot| {
                let (ctx, out) = &mut slot[0];
                let ti = start + i;
                let (ty, tx) = (ti / n_tiles, ti % n_tiles);
                // crop into a recycled buffer so the s×s bucket cycles too
                let mut window = ctx.alloc(&[1, 1, s, s]);
                crop_spatial_into(mask, ty * stride, tx * stride, &mut window);
                let pooled = ops::avg_pool2d_infer(ctx, &window, pool);
                ctx.recycle(window);
                *out = Some(self.model.gp_on_pooled_infer(ctx, pooled)); // [1, C, p, p]
            });
            for (off, (ctx, out)) in workers[..count].iter_mut().enumerate() {
                let feat = out.take().expect("window feature filled");
                let ti = start + off;
                let (ty, tx) = (ti / n_tiles, ti % n_tiles);
                // core region in pooled window coords; edge windows extend
                // to the tile boundary so every output pixel is covered
                // exactly once
                let cy0 = if ty == 0 { 0 } else { p / 4 };
                let cy1 = if ty == n_tiles - 1 { p } else { 3 * p / 4 };
                let cx0 = if tx == 0 { 0 } else { p / 4 };
                let cx1 = if tx == n_tiles - 1 { p } else { 3 * p / 4 };
                let oy = ty * stride / pool;
                let ox = tx * stride / pool;
                for ch in 0..c {
                    for wy in cy0..cy1 {
                        for wx in cx0..cx1 {
                            stitched.set(&[0, ch, oy + wy, ox + wx], feat.get(&[0, ch, wy, wx]));
                        }
                    }
                }
                ctx.recycle(feat);
            }
            start += count;
        }

        // 2. LP on the full tile + IR reconstruction from the stitched GP,
        //    tape-free on one context (reuse a window worker's warm pool).
        let mut ctx = workers
            .into_iter()
            .next()
            .map_or_else(|| InferCtx::with_pool(wpool), |(ctx, _)| ctx);
        let lp_feats = self.model.lp_features_infer(&mut ctx, mask);
        self.model.reconstruct_infer(&mut ctx, stitched, lp_feats)
    }

    /// Naive baseline: feed the large tile directly through the network
    /// (the "DOINN" row of Table 4 that shows the quality drop).
    pub fn simulate_naive(&self, mask: &Tensor) -> Tensor {
        self.model.infer(&mut InferCtx::new(), mask.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DoinnConfig;
    use litho_tensor::init::seeded_rng;

    #[test]
    fn output_shape_matches_large_input() {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = Tensor::zeros(&[1, 1, 64, 64]);
        let out = sim.simulate(&mask);
        assert_eq!(out.shape(), &[1, 1, 64, 64]);
        let naive = sim.simulate_naive(&mask);
        assert_eq!(naive.shape(), &[1, 1, 64, 64]);
    }

    #[test]
    fn equals_direct_forward_when_tile_matches_train_size() {
        // with L == S there is a single window covering everything, so the
        // stitched GP equals the direct GP and outputs must agree
        let mut rng = seeded_rng(2);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 32, 32], 0.5, &mut rng);
        let a = sim.simulate(&mask);
        let b = sim.simulate_naive(&mask);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn covers_every_output_pixel() {
        // stitched GP must leave no zero-holes for a constant input
        // (constant mask -> every window produces identical features)
        let mut rng = seeded_rng(3);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = Tensor::ones(&[1, 1, 96, 96]);
        let out = sim.simulate(&mask);
        // interior must be translation invariant: compare two interior pixels
        let a = out.get(&[0, 0, 40, 40]);
        let b = out.get(&[0, 0, 56, 56]);
        assert!((a - b).abs() < 1e-3, "interior not uniform: {a} vs {b}");
    }

    #[test]
    fn window_fanout_bit_identical_across_pool_sizes() {
        let mut rng = seeded_rng(5);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let sim = LargeTileSimulator::new(&model, 32);
        let mask = litho_tensor::init::randn(&[1, 1, 96, 96], 0.5, &mut rng);
        let want = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(1));
        for threads in [2usize, 4] {
            let got = sim.simulate_with_pool(&mask, &litho_parallel::Pool::new(threads));
            assert_eq!(
                want.as_slice(),
                got.as_slice(),
                "{threads}-thread stitching must be bit-identical"
            );
        }
    }

    #[test]
    #[should_panic(expected = "multiple of half the training tile")]
    fn rejects_misaligned_input() {
        let mut rng = seeded_rng(4);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let sim = LargeTileSimulator::new(&model, 32);
        let _ = sim.simulate(&Tensor::zeros(&[1, 1, 40, 40]));
    }
}
