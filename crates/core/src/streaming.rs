//! Full-chip streaming simulation engine.
//!
//! [`LargeTileSimulator`] is RAM-bound: the mask, the stitched GP feature
//! map and the output all materialise at chip scale. This module removes
//! that bound by partitioning the chip into super-tiles
//! ([`litho_geometry::ChipPlan`]) with guard-band halos and pumping them
//! through a three-stage **producer / compute / consumer** pipeline:
//!
//! 1. **produce** — crop up to `in_flight` halo-extended super-tiles from a
//!    [`TileSource`] (serial, cheap: seek-addressed reads);
//! 2. **compute** — run [`LargeTileSimulator::simulate_in_ctx`] on each
//!    tile, fanned out over the `litho-parallel` pool with persistent
//!    per-worker contexts ([`litho_nn::CtxBank`]) so the warm buffer pools
//!    survive from tile to tile;
//! 3. **consume** — crop each result back to its core region and flush it
//!    to a [`TileSink`], in tile-index order, each core exactly once.
//!
//! The stages advance in rounds of `in_flight` tiles, so peak memory is
//! `O(in_flight × super_tile²)` **regardless of chip size** — the
//! `tests/streaming_memory.rs` suite pins this with the
//! `litho_tensor::alloc_stats` live-bytes gauge, and `BENCH_fullchip.json`
//! records it against the in-memory path's `O(chip²)`.
//!
//! ## Determinism
//!
//! The output is bit-identical across `LITHO_THREADS` **and** across
//! in-flight budgets: every super-tile is simulated by the same instruction
//! sequence whatever context it lands on (a context only changes where
//! buffers come from), tiles are flushed in tile-index order by a single
//! consumer, and core regions are disjoint (exact-once coverage), so
//! neither the fan-out, the round size, nor the flush interleaving can
//! reorder arithmetic. The root `tests/streaming_determinism.rs` suite
//! property-tests this over pools × budgets.
//!
//! ## Halos
//!
//! Within a super-tile the large-tile scheme already guards its windows'
//! boundary effects; the super-tile's own edges see artificial boundaries,
//! so the plan extends every core by `halo` pixels on each side (clamped at
//! the chip, grown inward to `train_size` — the same clamping the window
//! logic applies one level down) and the consumer discards the band.
//! Widening the halo monotonically shrinks the seam disagreement against
//! the one-shot result (`tests/streaming_seam.rs`).
//!
//! ## Fault tolerance
//!
//! A chip-scale run is hours of work; this engine refuses to lose it to a
//! single bad moment (`docs/RELIABILITY.md` has the full model):
//!
//! - **transient I/O**: source reads and sink writes run under the
//!   [`StreamConfig::retry`] policy — `Interrupted`/`WouldBlock`/`TimedOut`
//!   errors are re-issued with bounded exponential backoff
//!   ([`crate::retry`]), and the count lands in
//!   [`StreamReport::io_retries`];
//! - **poisoned tiles**: each tile's simulation runs under `catch_unwind`
//!   and its output is screened for NaN/Inf; a bad tile is *quarantined* —
//!   its core is flushed as zeros so coverage and determinism hold — and
//!   recorded with coordinates in [`StreamReport::quarantined`] instead of
//!   aborting the chip;
//! - **kills**: [`ChipStreamer::resume_stream`] pairs the sink with a
//!   [`litho_data::JobJournal`]; completed tiles are journaled only after
//!   the sink data is synced, so a killed run resumes by recomputing
//!   exactly the missing tiles, and the resumed raster is bit-identical to
//!   an uninterrupted run (`tests/streaming_resume.rs`).
//!
//! Quarantine keeps determinism because panics and non-finite outputs are
//! themselves deterministic functions of the tile input — the same chip
//! quarantines the same tiles at any thread count.

use crate::large_tile::LargeTileSimulator;
use crate::model::Doinn;
use crate::retry::{retry_with_backoff, BackoffSleeper, RetryPolicy, ThreadSleeper};
use litho_data::{ChunkedRaster, JobJournal, JournalSpec};
use litho_geometry::{ChipPlan, TileWindow};
use litho_nn::CtxBank;
use litho_tensor::{crop_spatial, Tensor};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Pixel supplier for the produce stage: any store that can hand out
/// rectangular windows of a `height × width` raster.
pub trait TileSource {
    /// Raster size as `(height, width)` pixels.
    fn dims(&self) -> (usize, usize);

    /// Reads the `h × w` window at `(y0, x0)` into `out` (row-major,
    /// `out.len() == h*w`).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn read_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
    ) -> io::Result<()>;
}

/// Pixel consumer for the flush stage. Windows arrive disjoint and in tile
/// order; [`TileSink::finish`] runs once after the last flush.
pub trait TileSink {
    /// Writes the row-major `h × w` window `data` at `(y0, x0)`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn write_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        data: &[f32],
    ) -> io::Result<()>;

    /// Makes windows written so far durable without completing the sink
    /// (fsync for files; no-op by default). The journaled streaming path
    /// calls this before recording a round of tiles as done, so a journal
    /// entry never outlives the data it vouches for.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Completes the sink (flush/fsync for files; no-op by default).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory `[1, 1, H, W]` tensor as a source (tests, small chips).
impl TileSource for Tensor {
    fn dims(&self) -> (usize, usize) {
        assert_nchw(self);
        (self.dim(2), self.dim(3))
    }

    fn read_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
    ) -> io::Result<()> {
        assert_nchw(self);
        let (ih, iw) = (self.dim(2), self.dim(3));
        assert!(y0 + h <= ih && x0 + w <= iw, "window exceeds tensor bounds");
        assert_eq!(out.len(), h * w, "buffer length does not match window");
        let src = self.as_slice();
        for (row, dst) in out.chunks_exact_mut(w).enumerate() {
            let off = (y0 + row) * iw + x0;
            dst.copy_from_slice(&src[off..off + w]);
        }
        Ok(())
    }
}

/// An in-memory `[1, 1, H, W]` tensor as a sink (tests, small chips).
impl TileSink for Tensor {
    fn write_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        data: &[f32],
    ) -> io::Result<()> {
        assert_nchw(self);
        let (ih, iw) = (self.dim(2), self.dim(3));
        assert!(y0 + h <= ih && x0 + w <= iw, "window exceeds tensor bounds");
        assert_eq!(data.len(), h * w, "buffer length does not match window");
        let dst = self.as_mut_slice();
        for (row, src) in data.chunks_exact(w).enumerate() {
            let off = (y0 + row) * iw + x0;
            dst[off..off + w].copy_from_slice(src);
        }
        Ok(())
    }
}

/// The chunked on-disk raster as a source: the chip mask never fully
/// materialises in memory.
impl TileSource for ChunkedRaster {
    fn dims(&self) -> (usize, usize) {
        (self.height(), self.width())
    }

    fn read_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        out: &mut [f32],
    ) -> io::Result<()> {
        self.read_rect(y0, x0, h, w, out)
    }
}

/// The chunked on-disk raster as a sink; [`TileSink::finish`] is the
/// fsync'd [`ChunkedRaster::finalize`].
impl TileSink for ChunkedRaster {
    fn write_window(
        &mut self,
        y0: usize,
        x0: usize,
        h: usize,
        w: usize,
        data: &[f32],
    ) -> io::Result<()> {
        self.write_rect(y0, x0, h, w, data)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.sync_data()
    }

    fn finish(&mut self) -> io::Result<()> {
        self.finalize()
    }
}

fn assert_nchw(t: &Tensor) {
    assert_eq!(t.rank(), 4, "tile store expects an NCHW tensor");
    assert_eq!(t.dim(0), 1, "tile store is single-image");
    assert_eq!(t.dim(1), 1, "tile store expects a 1-channel raster");
}

/// Knobs of the streaming pipeline: super-tile core size, guard-band halo,
/// and the hard in-flight budget (peak memory is
/// `O(in_flight × (super_tile + 2·halo)²)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Core super-tile edge in pixels.
    pub super_tile: usize,
    /// Guard band added on each super-tile side, pixels. More halo = less
    /// seam disagreement, more redundant compute; `train_size/2` matches
    /// the margin the window scheme itself trusts.
    pub halo: usize,
    /// Maximum super-tiles resident at once (the pipeline's round size).
    pub in_flight: usize,
    /// Retry policy for transient source/sink I/O faults. Defaults to
    /// [`RetryPolicy::none`] (first error is final), matching the
    /// pre-fault-tolerance behaviour.
    pub retry: RetryPolicy,
}

impl StreamConfig {
    /// A configuration with explicit knobs (and no I/O retries; see
    /// [`StreamConfig::with_retry`]).
    ///
    /// # Panics
    ///
    /// Panics if `super_tile` or `in_flight` is zero.
    #[must_use]
    pub fn new(super_tile: usize, halo: usize, in_flight: usize) -> Self {
        assert!(super_tile > 0, "super-tile size must be positive");
        assert!(in_flight > 0, "in-flight budget must be positive");
        Self {
            super_tile,
            halo,
            in_flight,
            retry: RetryPolicy::none(),
        }
    }

    /// Replaces the transient-I/O retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The defaults for a model trained on `train_size` tiles: super-tiles
    /// of `4 × train_size`, a half-window halo (the same margin the §3.2
    /// scheme trusts between windows), and an in-flight budget of twice the
    /// process-wide pool so the compute stage never starves.
    #[must_use]
    pub fn default_for(train_size: usize) -> Self {
        Self::new(
            4 * train_size,
            train_size / 2,
            2 * litho_parallel::global().threads(),
        )
    }
}

/// A tile whose simulation panicked or produced non-finite output. Its
/// core was flushed as zeros so chip coverage (and determinism) hold;
/// the caller decides whether any quarantine is acceptable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedTile {
    /// Tile index in the `ChipPlan` numbering.
    pub index: usize,
    /// Tile row in the super-tile grid.
    pub tile_y: usize,
    /// Tile column in the super-tile grid.
    pub tile_x: usize,
    /// What went wrong: the panic message, or the first NaN/Inf found.
    pub reason: String,
}

/// What a streaming run did — sizes, tile counts, and the fault ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamReport {
    /// Chip height in pixels.
    pub chip_h: usize,
    /// Chip width in pixels.
    pub chip_w: usize,
    /// Super-tile rows.
    pub tiles_y: usize,
    /// Super-tile columns.
    pub tiles_x: usize,
    /// Tiles actually simulated by this run.
    pub computed: usize,
    /// Tiles skipped because the job journal already had them (resume).
    pub skipped: usize,
    /// Transient I/O faults absorbed by the retry policy.
    pub io_retries: u64,
    /// Tiles quarantined (panic or non-finite output), with coordinates.
    pub quarantined: Vec<QuarantinedTile>,
}

impl StreamReport {
    /// Total super-tiles in the plan.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.tiles_y * self.tiles_x
    }

    /// Did every computed tile come out clean (no quarantine)?
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// Streams a full chip through a [`LargeTileSimulator`] with bounded
/// memory (see the module docs).
#[derive(Debug)]
pub struct ChipStreamer<'a> {
    sim: LargeTileSimulator<'a>,
}

impl<'a> ChipStreamer<'a> {
    /// A streamer over `model` trained on `train_size × train_size` tiles.
    ///
    /// # Panics
    ///
    /// Panics on the [`LargeTileSimulator::new`] divisibility constraint.
    pub fn new(model: &'a Doinn, train_size: usize) -> Self {
        Self {
            sim: LargeTileSimulator::new(model, train_size),
        }
    }

    /// The per-super-tile simulator.
    #[must_use]
    pub fn simulator(&self) -> &LargeTileSimulator<'a> {
        &self.sim
    }

    /// Streams `src` to `sink` on the process-wide pool.
    ///
    /// # Errors
    ///
    /// Propagates source/sink I/O errors (the pipeline stops at the first).
    ///
    /// # Panics
    ///
    /// Panics if either chip dimension is smaller than the training tile,
    /// or if `sink` rejects a window shape (the sink must span the chip).
    pub fn stream<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
    ) -> io::Result<StreamReport> {
        self.stream_with_pool(src, sink, cfg, litho_parallel::global())
    }

    /// [`ChipStreamer::stream`] with an explicit pool for the compute-stage
    /// fan-out.
    pub fn stream_with_pool<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        wpool: &litho_parallel::Pool,
    ) -> io::Result<StreamReport> {
        self.run(src, sink, cfg, wpool, None, &mut ThreadSleeper)
    }

    /// [`ChipStreamer::stream_with_pool`] with an explicit backoff sleeper
    /// for the retry policy — tests drive retries through a recording or
    /// simulated-clock sleeper instead of real `thread::sleep`.
    pub fn stream_with_sleeper<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        wpool: &litho_parallel::Pool,
        sleeper: &mut dyn BackoffSleeper,
    ) -> io::Result<StreamReport> {
        self.run(src, sink, cfg, wpool, None, sleeper)
    }

    /// The [`JournalSpec`] a job journal for this streamer + chip + config
    /// must carry (pass to [`litho_data::JobJournal::open_or_create`]).
    #[must_use]
    pub fn journal_spec(&self, chip_h: usize, chip_w: usize, cfg: &StreamConfig) -> JournalSpec {
        let plan = ChipPlan::new(chip_w, chip_h, cfg.super_tile, cfg.halo)
            .with_min_extent(self.sim.train_size());
        JournalSpec {
            chip_w: chip_w as u64,
            chip_h: chip_h as u64,
            super_tile: cfg.super_tile as u32,
            halo: cfg.halo as u32,
            tiles: plan.len() as u64,
        }
    }

    /// Journaled streaming on the process-wide pool: tiles already
    /// recorded in `journal` are skipped, every newly completed round is
    /// made durable (sink flush, then journal record + sync, in that
    /// order), and the sink is finalized once all tiles are present.
    ///
    /// With a fresh (empty) journal this *is* the crash-safe way to run a
    /// long job from scratch; with a journal left behind by a killed run
    /// it recomputes exactly the missing tiles. Either way the finished
    /// raster is bit-identical to an uninterrupted [`ChipStreamer::stream`]
    /// (`tests/streaming_resume.rs` pins this at 1/2/4 threads).
    ///
    /// # Errors
    ///
    /// Propagates source/sink/journal I/O errors, and `InvalidData` if the
    /// journal's geometry does not match this chip + config.
    ///
    /// # Panics
    ///
    /// As [`ChipStreamer::stream`].
    pub fn resume_stream<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        journal: &mut JobJournal,
    ) -> io::Result<StreamReport> {
        self.resume_stream_with_pool(src, sink, cfg, journal, litho_parallel::global())
    }

    /// [`ChipStreamer::resume_stream`] with an explicit pool.
    pub fn resume_stream_with_pool<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        journal: &mut JobJournal,
        wpool: &litho_parallel::Pool,
    ) -> io::Result<StreamReport> {
        self.run(src, sink, cfg, wpool, Some(journal), &mut ThreadSleeper)
    }

    /// [`ChipStreamer::resume_stream_with_pool`] with an explicit backoff
    /// sleeper (see [`ChipStreamer::stream_with_sleeper`]).
    pub fn resume_stream_with_sleeper<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        journal: &mut JobJournal,
        wpool: &litho_parallel::Pool,
        sleeper: &mut dyn BackoffSleeper,
    ) -> io::Result<StreamReport> {
        self.run(src, sink, cfg, wpool, Some(journal), sleeper)
    }

    /// The shared produce → compute → consume pipeline behind every public
    /// streaming entry point.
    fn run<S: TileSource, K: TileSink>(
        &self,
        src: &mut S,
        sink: &mut K,
        cfg: &StreamConfig,
        wpool: &litho_parallel::Pool,
        mut journal: Option<&mut JobJournal>,
        sleeper: &mut dyn BackoffSleeper,
    ) -> io::Result<StreamReport> {
        let (chip_h, chip_w) = src.dims();
        let plan = ChipPlan::new(chip_w, chip_h, cfg.super_tile, cfg.halo)
            .with_min_extent(self.sim.train_size());
        let total = plan.len();
        let mut skipped = 0usize;
        let pending: Vec<usize> = match journal.as_deref() {
            Some(j) => {
                let spec = self.journal_spec(chip_h, chip_w, cfg);
                if j.spec() != spec {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "job journal does not match this job: journal {:?}, job {spec:?}",
                            j.spec()
                        ),
                    ));
                }
                let p: Vec<usize> = (0..total).filter(|&i| !j.is_done(i)).collect();
                skipped = total - p.len();
                p
            }
            None => (0..total).collect(),
        };

        let bank = CtxBank::new(wpool);
        let mut io_retries = 0u64;
        let mut quarantined: Vec<QuarantinedTile> = Vec::new();
        let mut next = 0;
        while next < pending.len() {
            let count = cfg.in_flight.min(pending.len() - next);
            let round = &pending[next..next + count];

            // produce: crop the round's halo-extended tiles from the source
            let mut inputs: Vec<(usize, TileWindow, Tensor)> = Vec::with_capacity(count);
            for &i in round {
                let tw = plan.window(i);
                let mut buf = vec![0.0; tw.ext_h * tw.ext_w];
                let (_, retries) = retry_with_backoff(&cfg.retry, sleeper, || {
                    src.read_window(tw.ext_y0, tw.ext_x0, tw.ext_h, tw.ext_w, &mut buf)
                })?;
                io_retries += u64::from(retries);
                inputs.push((i, tw, Tensor::from_vec(buf, &[1, 1, tw.ext_h, tw.ext_w])));
            }

            // compute: per-tile large-tile simulation on persistent
            // per-worker contexts; input tiles are consumed (freed) in the
            // workers, results come back in tile order. A panicking or
            // NaN/Inf-producing tile is contained here, not propagated.
            let outputs = bank.par_map_consume(inputs, |ctx, (i, tw, tile)| {
                let result =
                    catch_unwind(AssertUnwindSafe(|| self.sim.simulate_in_ctx(ctx, &tile)))
                        .map_err(|p| format!("tile simulation panicked: {}", panic_message(&p)))
                        .and_then(|out| match out.first_non_finite() {
                            None => Ok(out),
                            Some((at, v)) => Err(format!(
                                "tile output is not finite: value {v} at flat index {at}"
                            )),
                        });
                (i, tw, result)
            });

            // consume: crop cores and flush in tile-index order; a
            // quarantined tile's core flushes as zeros so coverage holds
            for (i, tw, result) in outputs {
                let core = match &result {
                    Ok(out) => {
                        let (dy, dx) = tw.core_offset();
                        crop_spatial(out, dy, dx, tw.core_h, tw.core_w)
                    }
                    Err(reason) => {
                        quarantined.push(QuarantinedTile {
                            index: i,
                            tile_y: i / plan.tiles_x(),
                            tile_x: i % plan.tiles_x(),
                            reason: reason.clone(),
                        });
                        Tensor::zeros(&[1, 1, tw.core_h, tw.core_w])
                    }
                };
                let (_, retries) = retry_with_backoff(&cfg.retry, sleeper, || {
                    sink.write_window(
                        tw.core_y0,
                        tw.core_x0,
                        tw.core_h,
                        tw.core_w,
                        core.as_slice(),
                    )
                })?;
                io_retries += u64::from(retries);
            }

            // journal the round only after its sink data is durable
            if let Some(j) = journal.as_deref_mut() {
                sink.flush()?;
                for &i in round {
                    j.record(i)?;
                }
                j.sync()?;
            }
            next += count;
        }
        sink.finish()?;
        Ok(StreamReport {
            chip_h,
            chip_w,
            tiles_y: plan.tiles_y(),
            tiles_x: plan.tiles_x(),
            computed: pending.len(),
            skipped,
            io_retries,
            quarantined,
        })
    }
}

/// Renders a `catch_unwind` payload (the common `&str` / `String` cases).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DoinnConfig;
    use litho_nn::Module;
    use litho_tensor::init::seeded_rng;

    fn toy_chip(h: usize, w: usize, seed: u64) -> Tensor {
        litho_tensor::init::randn(&[1, 1, h, w], 0.5, &mut seeded_rng(seed))
    }

    #[test]
    fn streamed_tensor_roundtrip_covers_whole_chip() {
        let mut rng = seeded_rng(11);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let streamer = ChipStreamer::new(&model, 32);
        let mut src = toy_chip(96, 80, 1);
        let mut sink = Tensor::full(&[1, 1, 96, 80], f32::NAN);
        let cfg = StreamConfig::new(48, 16, 3);
        let report = streamer
            .stream_with_pool(&mut src, &mut sink, &cfg, &litho_parallel::Pool::new(2))
            .unwrap();
        assert_eq!((report.tiles_y, report.tiles_x), (2, 2));
        assert_eq!(report.tiles(), 4);
        // every pixel flushed exactly once: no NaN survives
        assert!(sink.all_finite(), "unflushed pixels remain");
    }

    #[test]
    fn zero_halo_single_tile_equals_one_shot() {
        // one super-tile covering the whole chip = the in-memory path
        let mut rng = seeded_rng(12);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let streamer = ChipStreamer::new(&model, 32);
        let pool = litho_parallel::Pool::new(2);
        let mut src = toy_chip(64, 64, 2);
        let want = streamer.simulator().simulate_with_pool(&src, &pool);
        let mut sink = Tensor::zeros(&[1, 1, 64, 64]);
        let cfg = StreamConfig::new(64, 0, 1);
        streamer
            .stream_with_pool(&mut src, &mut sink, &cfg, &pool)
            .unwrap();
        assert_eq!(want.as_slice(), sink.as_slice());
    }

    #[test]
    fn in_flight_budget_does_not_change_results() {
        let mut rng = seeded_rng(13);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        model.set_training(false);
        let streamer = ChipStreamer::new(&model, 32);
        let pool = litho_parallel::Pool::new(2);
        let mut outs = Vec::new();
        for in_flight in [1usize, 2, 5] {
            let mut src = toy_chip(80, 80, 3);
            let mut sink = Tensor::zeros(&[1, 1, 80, 80]);
            let cfg = StreamConfig::new(48, 8, in_flight);
            streamer
                .stream_with_pool(&mut src, &mut sink, &cfg, &pool)
                .unwrap();
            outs.push(sink);
        }
        assert_eq!(outs[0].as_slice(), outs[1].as_slice());
        assert_eq!(outs[0].as_slice(), outs[2].as_slice());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = StreamConfig::default_for(32);
        assert_eq!(cfg.super_tile, 128);
        assert_eq!(cfg.halo, 16);
        assert!(cfg.in_flight >= 2);
    }
}
