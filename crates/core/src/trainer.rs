//! Supervised training and evaluation driver implementing the paper's
//! recipe (appendix Table 8): Adam, lr 0.002 halved every 2 epochs, weight
//! decay 1e-4, MSE loss on Tanh outputs, batch size 16, 10 epochs.

use crate::metrics::{seg_metrics, SegMetrics};
use crate::model::prediction_to_contour;
use litho_nn::{ops, Adam, Graph, InferCtx, Module, StepLr};
use litho_tensor::{stack_batch, Tensor};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyper-parameters (defaults = paper Table 8).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial Adam learning rate.
    pub lr: f32,
    /// Epoch interval between learning-rate decays.
    pub lr_step: usize,
    /// Learning-rate decay factor.
    pub lr_gamma: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Shuffling seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Print a line per epoch to stderr.
    pub verbose: bool,
    /// Apply random dihedral (rot90/flip) augmentation per sample — valid for
    /// rotationally symmetric illumination, and a large effective-dataset
    /// multiplier in the small-data regime of the CPU-scale experiments.
    pub augment: bool,
    /// Stop early when the epoch loss has not improved by at least
    /// `min_rel_delta` (relative) for `patience` consecutive epochs.
    pub early_stop: Option<EarlyStop>,
}

/// Early-stopping criterion for [`train_model`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Number of consecutive non-improving epochs tolerated.
    pub patience: usize,
    /// Minimum relative improvement that counts as progress.
    pub min_rel_delta: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 16,
            lr: 0.002,
            lr_step: 2,
            lr_gamma: 0.5,
            weight_decay: 1e-4,
            seed: 0,
            verbose: false,
            augment: false,
            early_stop: None,
        }
    }
}

impl TrainConfig {
    /// A shortened schedule for CPU-scale experiments.
    pub fn quick(epochs: usize, batch_size: usize) -> Self {
        Self {
            epochs,
            batch_size,
            ..Self::default()
        }
    }
}

/// One supervised example: `(mask, target)` as `[1, S, S]` CHW tensors.
/// Targets use the Tanh convention: printed = +1, background = −1.
pub type Sample = (Tensor, Tensor);

/// Per-epoch training statistics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean MSE per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub steps: usize,
    /// Wall-clock seconds spent in training.
    pub seconds: f64,
}

/// Converts a `{0,1}` resist image to the `±1` Tanh target convention.
pub fn to_tanh_target(binary: &Tensor) -> Tensor {
    binary.map(|v| if v >= 0.5 { 1.0 } else { -1.0 })
}

/// Trains `model` on `samples` with the paper's recipe.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn train_model<M: Module + ?Sized>(
    model: &M,
    samples: &[Sample],
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "training set is empty");
    // litho-lint: allow(clock-discipline): TrainReport.seconds is wall time by definition
    let start = std::time::Instant::now();
    model.set_training(true);
    let mut opt = Adam::new(model.params(), cfg.lr).with_weight_decay(cfg.weight_decay);
    let sched = StepLr::new(cfg.lr, cfg.lr_step, cfg.lr_gamma);
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut steps = 0usize;
    for epoch in 0..cfg.epochs {
        opt.set_lr(sched.lr_at(epoch));
        order.shuffle(&mut rng);
        let mut total = 0.0f64;
        let mut seen = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (x_batch, t_batch) = if cfg.augment {
                use rand::Rng;
                let pairs: Vec<(Tensor, Tensor)> = chunk
                    .iter()
                    .map(|&i| {
                        let k = rng.gen_range(0..8usize);
                        (
                            litho_tensor::dihedral_chw(&samples[i].0, k),
                            litho_tensor::dihedral_chw(&samples[i].1, k),
                        )
                    })
                    .collect();
                let masks: Vec<&Tensor> = pairs.iter().map(|(m, _)| m).collect();
                let targets: Vec<&Tensor> = pairs.iter().map(|(_, t)| t).collect();
                (stack_batch(&masks), stack_batch(&targets))
            } else {
                let masks: Vec<&Tensor> = chunk.iter().map(|&i| &samples[i].0).collect();
                let targets: Vec<&Tensor> = chunk.iter().map(|&i| &samples[i].1).collect();
                (stack_batch(&masks), stack_batch(&targets))
            };
            opt.zero_grad();
            let mut g = Graph::new();
            let x = g.input(x_batch);
            let y = model.forward(&mut g, x);
            let loss = ops::mse_loss(&mut g, y, &t_batch);
            // MSE is a mean over the batch, so weight each batch by its
            // sample count: a ragged final batch must not be over-weighted
            // in the epoch mean (17 samples at batch 16 would otherwise give
            // the lone 17th sample half the epoch's weight).
            total += g.value(loss).as_slice()[0] as f64 * chunk.len() as f64;
            seen += chunk.len();
            g.backward(loss);
            opt.step();
            steps += 1;
        }
        let mean = (total / seen.max(1) as f64) as f32;
        epoch_losses.push(mean);
        if cfg.verbose {
            eprintln!(
                "epoch {:>2}/{}: loss {:.5} (lr {:.5})",
                epoch + 1,
                cfg.epochs,
                mean,
                sched.lr_at(epoch)
            );
        }
        if let Some(es) = cfg.early_stop {
            let window = es.patience;
            if epoch_losses.len() > window {
                let best_before: f32 = epoch_losses[..epoch_losses.len() - window]
                    .iter()
                    .copied()
                    .fold(f32::INFINITY, f32::min);
                let best_recent: f32 = epoch_losses[epoch_losses.len() - window..]
                    .iter()
                    .copied()
                    .fold(f32::INFINITY, f32::min);
                if best_recent > best_before * (1.0 - es.min_rel_delta) {
                    if cfg.verbose {
                        eprintln!("early stop after epoch {} (plateau)", epoch + 1);
                    }
                    break;
                }
            }
        }
    }
    model.set_training(false);
    TrainReport {
        epoch_losses,
        steps,
        seconds: start.elapsed().as_secs_f64(),
    }
}

/// Evaluates `model` against golden `{0,1}` resist images, returning the
/// dataset-mean mPA/mIOU (paper §2.2). `golden` pairs are `(mask, resist)`.
///
/// Evaluation runs in inference mode; the model's previous training/eval
/// mode is restored before returning, so calling this mid-training does not
/// freeze batch-norm statistics for the remaining epochs. The forwards are
/// tape-free ([`Module::infer`]) on one shared [`InferCtx`], so activation
/// buffers recycle across the whole evaluation set.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn evaluate_model<M: Module + ?Sized>(model: &M, samples: &[(Tensor, Tensor)]) -> SegMetrics {
    assert!(!samples.is_empty(), "evaluation set is empty");
    let was_training = model.is_training();
    model.set_training(false);
    let mut ctx = InferCtx::new();
    let per_tile: Vec<SegMetrics> = samples
        .iter()
        .map(|(mask, golden)| {
            let shape = [1, mask.dim(0), mask.dim(1), mask.dim(2)];
            let y = model.infer(&mut ctx, mask.reshape(&shape));
            let contour = prediction_to_contour(&y);
            ctx.recycle(y);
            seg_metrics(&contour, golden.as_slice())
        })
        .collect();
    model.set_training(was_training);
    SegMetrics::mean(&per_tile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Doinn, DoinnConfig};
    use litho_tensor::init::seeded_rng;

    fn toy_dataset(n: usize, size: usize) -> Vec<Sample> {
        // mask = random blobs; "resist" = the mask itself (identity litho) —
        // enough to check the training loop plumbing end to end
        let mut rng = seeded_rng(42);
        (0..n)
            .map(|_| {
                let noise = litho_tensor::init::randn(&[1, size, size], 1.0, &mut rng);
                let mask = noise.map(|v| if v > 0.6 { 1.0 } else { 0.0 });
                let target = to_tanh_target(&mask);
                (mask, target)
            })
            .collect()
    }

    #[test]
    fn training_loss_decreases_on_identity_task() {
        let mut rng = seeded_rng(1);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let data = toy_dataset(8, 32);
        let report = train_model(
            &model,
            &data,
            &TrainConfig {
                epochs: 4,
                batch_size: 4,
                verbose: false,
                ..TrainConfig::default()
            },
        );
        assert_eq!(report.epoch_losses.len(), 4);
        assert_eq!(report.steps, 8);
        assert!(
            report.epoch_losses[3] < report.epoch_losses[0],
            "losses: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn evaluation_returns_sane_metrics() {
        let mut rng = seeded_rng(2);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let data: Vec<(Tensor, Tensor)> = toy_dataset(3, 32)
            .into_iter()
            .map(|(m, t)| {
                let golden = t.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                (m, golden)
            })
            .collect();
        let metrics = evaluate_model(&model, &data);
        assert!((0.0..=1.0).contains(&metrics.miou));
        assert!((0.0..=1.0).contains(&metrics.mpa));
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let build = || {
            let mut rng = seeded_rng(3);
            Doinn::new(DoinnConfig::tiny(), &mut rng)
        };
        let data = toy_dataset(4, 32);
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 2,
            ..TrainConfig::default()
        };
        let r1 = train_model(&build(), &data, &cfg);
        let r2 = train_model(&build(), &data, &cfg);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
    }

    #[test]
    fn ragged_final_batch_is_not_overweighted() {
        // 17 samples at batch 16 leaves a lone final sample; weighting by
        // batch (the old bug) gave it 50% of the epoch mean. With lr 0 the
        // parameters never move, so the epoch loss must equal the plain
        // per-sample mean — identical for every batch size.
        let mut rng = seeded_rng(9);
        // no-LP ablation: no batch-norm, so per-sample losses are independent
        // of how the epoch is batched
        let model = Doinn::new(DoinnConfig::tiny().ablation_gp(), &mut rng);
        let data = toy_dataset(17, 32);
        let loss_at = |batch_size: usize| {
            train_model(
                &model,
                &data,
                &TrainConfig {
                    epochs: 1,
                    batch_size,
                    lr: 0.0,
                    weight_decay: 0.0,
                    ..TrainConfig::default()
                },
            )
            .epoch_losses[0]
        };
        let reference = loss_at(17); // one full batch: unambiguous mean
        for bs in [16usize, 5, 3] {
            let got = loss_at(bs);
            // tolerance: f32 summation order inside mse_loss differs per
            // batching (~1e-5); the batch-weighting bug this guards against
            // skews the mean at the 1e-2 scale
            assert!(
                (got - reference).abs() < 1e-3,
                "batch size {bs}: epoch loss {got} vs whole-set mean {reference}"
            );
        }
    }

    #[test]
    fn evaluate_restores_training_mode() {
        // regression: evaluate_model forced eval mode and never restored it,
        // silently freezing batch-norm for all epochs after a mid-training
        // evaluation
        let mut rng = seeded_rng(10);
        let model = Doinn::new(DoinnConfig::tiny(), &mut rng);
        let data: Vec<(Tensor, Tensor)> = toy_dataset(2, 32)
            .into_iter()
            .map(|(m, t)| (m, t.map(|v| if v > 0.0 { 1.0 } else { 0.0 })))
            .collect();
        model.set_training(true);
        let _ = evaluate_model(&model, &data);
        assert!(
            model.is_training(),
            "mid-training evaluation must restore training mode"
        );
        model.set_training(false);
        let _ = evaluate_model(&model, &data);
        assert!(!model.is_training(), "eval mode must survive evaluation");
    }

    #[test]
    fn tanh_target_mapping() {
        let b = Tensor::from_vec(vec![0.0, 1.0, 0.3, 0.7], &[4]);
        let t = to_tanh_target(&b);
        assert_eq!(t.as_slice(), &[-1.0, 1.0, -1.0, 1.0]);
    }
}
